package iface

import (
	"testing"
	"testing/quick"

	"partita/internal/ip"
	"partita/internal/kernel"
)

func pipelinedIP() *ip.IP {
	return &ip.IP{
		ID: "IPX", Name: "test filter", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 3,
	}
}

func shape() Shape { return Shape{NIn: 64, NOut: 64, TSW: 10000, TC: 0} }

func TestAllTypesFeasibleForSimpleIP(t *testing.T) {
	cands := Candidates(pipelinedIP(), shape(), kernel.DefaultArea())
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	seen := map[Type]bool{}
	for _, c := range cands {
		seen[c.Type] = true
	}
	for ty := Type0; ty < NumTypes; ty++ {
		if !seen[ty] {
			t.Errorf("type %v missing", ty)
		}
	}
}

func TestType0InfeasibleForManyPorts(t *testing.T) {
	b := pipelinedIP()
	b.InPorts = 4
	if _, ok := Plan(Type0, b, shape(), kernel.DefaultArea()); ok {
		t.Error("type 0 must reject >2 in-ports")
	}
	if _, ok := Plan(Type2, b, shape(), kernel.DefaultArea()); ok {
		t.Error("type 2 must reject >2 in-ports")
	}
	if _, ok := Plan(Type1, b, shape(), kernel.DefaultArea()); !ok {
		t.Error("type 1 must accept >2 in-ports via buffers")
	}
	if _, ok := Plan(Type3, b, shape(), kernel.DefaultArea()); !ok {
		t.Error("type 3 must accept >2 in-ports via buffers")
	}
}

func TestType0InfeasibleForDifferentRates(t *testing.T) {
	b := pipelinedIP()
	b.OutRate = 8 // interpolator-style rate mismatch
	if _, ok := Plan(Type0, b, shape(), kernel.DefaultArea()); ok {
		t.Error("type 0 must reject differing in/out rates")
	}
	for _, ty := range []Type{Type1, Type2, Type3} {
		if _, ok := Plan(ty, b, shape(), kernel.DefaultArea()); !ok {
			t.Errorf("type %v should support differing rates", ty)
		}
	}
}

func TestType0SlowClock(t *testing.T) {
	fast := pipelinedIP()
	fast.InRate, fast.OutRate = 1, 1 // faster than the 4-cycle template
	c, ok := Plan(Type0, fast, shape(), kernel.DefaultArea())
	if !ok {
		t.Fatal("type 0 plan failed")
	}
	if c.ClockDiv != 4 {
		t.Errorf("ClockDiv = %d, want 4 (rate 1 → template rate 4)", c.ClockDiv)
	}
	slow := pipelinedIP()
	cSlow, _ := Plan(Type0, slow, shape(), kernel.DefaultArea())
	if cSlow.ClockDiv != 1 {
		t.Errorf("rate-4 IP should not be slow-clocked, got div %d", cSlow.ClockDiv)
	}
	// Slow-clocking inflates T_IP.
	if c.TIP <= cSlow.TIP/2 {
		t.Errorf("slow-clocked TIP = %d vs native %d: divider not applied", c.TIP, cSlow.TIP)
	}
}

func TestExecTimeEquations(t *testing.T) {
	am := kernel.DefaultArea()
	b := pipelinedIP()
	s := shape()

	c0, _ := Plan(Type0, b, s, am)
	if c0.Exec != max64(c0.TIP, c0.TIF) {
		t.Errorf("type 0 exec = %d, want MAX(TIP=%d, TIF=%d)", c0.Exec, c0.TIP, c0.TIF)
	}

	s.TC = 0
	c1, _ := Plan(Type1, b, s, am)
	want := c1.TIFIn + max64(c1.TIP, c1.TB) + c1.TIFOut
	if c1.Exec != want {
		t.Errorf("type 1 exec = %d, want %d", c1.Exec, want)
	}

	// With parallel code, exec shrinks by MIN(TIP, TC).
	s.TC = c1.TIP / 2
	c1p, _ := Plan(Type1, b, s, am)
	if c1p.Exec != want-s.TC {
		t.Errorf("type 1 exec with TC = %d, want %d", c1p.Exec, want-s.TC)
	}
	if c1p.TCUsed != s.TC {
		t.Errorf("TCUsed = %d, want %d", c1p.TCUsed, s.TC)
	}

	// TC larger than TIP credits only TIP.
	s.TC = c1.TIP * 3
	c1q, _ := Plan(Type1, b, s, am)
	if c1q.TCUsed != c1.TIP {
		t.Errorf("TCUsed = %d, want capped at TIP %d", c1q.TCUsed, c1.TIP)
	}
}

func TestParallelOnlyForBufferedTypes(t *testing.T) {
	s := shape()
	s.TC = 1_000_000
	am := kernel.DefaultArea()
	b := pipelinedIP()
	c0, _ := Plan(Type0, b, s, am)
	c2, _ := Plan(Type2, b, s, am)
	if c0.TCUsed != 0 || c2.TCUsed != 0 {
		t.Error("unbuffered types must not credit parallel code")
	}
	c1, _ := Plan(Type1, b, s, am)
	c3, _ := Plan(Type3, b, s, am)
	if c1.TCUsed == 0 || c3.TCUsed == 0 {
		t.Error("buffered types must credit parallel code")
	}
	if !Type1.SupportsParallel() || !Type3.SupportsParallel() || Type0.SupportsParallel() || Type2.SupportsParallel() {
		t.Error("SupportsParallel flags wrong")
	}
}

func TestAreaOrdering(t *testing.T) {
	// For a simple 2-port IP: type 0 is cheapest; buffered types cost
	// more than their unbuffered siblings.
	am := kernel.DefaultArea()
	b := pipelinedIP()
	s := shape()
	var area [4]float64
	for ty := Type0; ty < NumTypes; ty++ {
		c, ok := Plan(ty, b, s, am)
		if !ok {
			t.Fatalf("type %v infeasible", ty)
		}
		area[ty] = c.IfaceArea
	}
	if !(area[Type0] < area[Type1]) {
		t.Errorf("area IF0 (%g) should be < IF1 (%g)", area[Type0], area[Type1])
	}
	if !(area[Type2] < area[Type3]) {
		t.Errorf("area IF2 (%g) should be < IF3 (%g)", area[Type2], area[Type3])
	}
	if !(area[Type0] < area[Type3]) {
		t.Errorf("area IF0 (%g) should be < IF3 (%g)", area[Type0], area[Type3])
	}
}

func TestHardwareFasterThanSoftwareTransfer(t *testing.T) {
	am := kernel.DefaultArea()
	b := pipelinedIP()
	s := shape()
	c0, _ := Plan(Type0, b, s, am)
	c2, _ := Plan(Type2, b, s, am)
	if c2.TIF >= c0.TIF {
		t.Errorf("DMA transfer (%d) should beat software transfer (%d)", c2.TIF, c0.TIF)
	}
	c1, _ := Plan(Type1, b, s, am)
	c3, _ := Plan(Type3, b, s, am)
	if c3.TIFIn >= c1.TIFIn || c3.TIFOut >= c1.TIFOut {
		t.Errorf("FSM buffer fill/drain (%d/%d) should beat software (%d/%d)",
			c3.TIFIn, c3.TIFOut, c1.TIFIn, c1.TIFOut)
	}
}

func TestGainMonotonicInTSW(t *testing.T) {
	am := kernel.DefaultArea()
	b := pipelinedIP()
	f := func(tswRaw uint16, nRaw uint8) bool {
		s := Shape{NIn: int(nRaw%64) + 1, NOut: int(nRaw%64) + 1, TSW: int64(tswRaw)}
		c, ok := Plan(Type0, b, s, am)
		if !ok {
			return true
		}
		// Gain + Exec must equal TSW exactly, and Exec must not depend
		// on TSW.
		c2, _ := Plan(Type0, b, Shape{NIn: s.NIn, NOut: s.NOut, TSW: s.TSW + 1000}, am)
		return c.Gain+c.Exec == s.TSW && c2.Exec == c.Exec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTemplatesGenerateValidCode(t *testing.T) {
	b := pipelinedIP()
	s := shape()
	for _, ty := range []Type{Type0, Type1} {
		tmpl, err := SoftwareTemplate(ty, b, s)
		if err != nil {
			t.Fatal(err)
		}
		if tmpl.Words <= 0 {
			t.Errorf("%v template has no code", ty)
		}
		if len(tmpl.Fn.Blocks) < 3 {
			t.Errorf("%v template should have init/loop/done structure", ty)
		}
	}
	t0, _ := SoftwareTemplate(Type0, b, s)
	if t0.TransferCycles <= 0 {
		t.Error("type 0 transfer cycles not computed")
	}
	t1, _ := SoftwareTemplate(Type1, b, s)
	if t1.FillCycles <= 0 || t1.DrainCycles <= 0 {
		t.Error("type 1 fill/drain cycles not computed")
	}
}

func TestFSMGeneration(t *testing.T) {
	b := pipelinedIP()
	s := shape()
	f2, err := ControllerFSM(Type2, b, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.States) < 5 {
		t.Errorf("type 2 FSM states = %d, want >= 5", len(f2.States))
	}
	f3, _ := ControllerFSM(Type3, b, s)
	if len(f3.States) <= len(f2.States) {
		t.Errorf("type 3 FSM (%d states) should exceed type 2 (%d)", len(f3.States), len(f2.States))
	}
	if f2.String() == "" || f3.String() == "" {
		t.Error("FSM dump empty")
	}

	// Rate-mismatched IP needs split controllers → more states.
	b2 := pipelinedIP()
	b2.OutRate = 8
	f2r, _ := ControllerFSM(Type2, b2, s)
	if len(f2r.States) <= len(f2.States) {
		t.Errorf("split-rate FSM (%d) should exceed equal-rate FSM (%d)", len(f2r.States), len(f2.States))
	}
}

func TestProtocolTransformerAreaCounted(t *testing.T) {
	am := kernel.DefaultArea()
	s := shape()
	sync := pipelinedIP()
	hs := pipelinedIP()
	hs.Protocol = ip.Handshake
	cSync, _ := Plan(Type2, sync, s, am)
	cHS, _ := Plan(Type2, hs, s, am)
	if cHS.IfaceArea <= cSync.IfaceArea {
		t.Errorf("handshake PT should add area: %g vs %g", cHS.IfaceArea, cSync.IfaceArea)
	}
}

func TestSlowerIPWithParallelCodeCanWin(t *testing.T) {
	// The paper's key observation: "a slower IP with a parallel code may
	// be better than a faster IP without a parallel code."
	am := kernel.DefaultArea()
	fast := pipelinedIP()
	fast.Latency = 4
	slow := pipelinedIP()
	slow.Latency = 4
	slow.PerfFactor = 2.0

	s := Shape{NIn: 64, NOut: 64, TSW: 20000}
	cFast, _ := Plan(Type2, fast, s, am) // fast IP, unbuffered → no PC
	sPC := s
	sPC.TC = 100000 // ample parallel code
	cSlow, _ := Plan(Type3, slow, sPC, am)
	if cSlow.Gain <= cFast.Gain {
		t.Errorf("slow IP with PC gain %d should beat fast IP without PC gain %d", cSlow.Gain, cFast.Gain)
	}
}
