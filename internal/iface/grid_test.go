package iface

import (
	"testing"

	"partita/internal/ip"
	"partita/internal/kernel"
)

// TestCandidateGridInvariants sweeps a parameter grid of IP shapes and
// asserts the structural invariants of Section 3 hold everywhere:
//
//   - Gain + Exec == TSW exactly;
//   - Exec > 0 for non-degenerate shapes;
//   - the unbuffered types never credit parallel code;
//   - buffered fill/drain and TB are consistent with the Exec equation;
//   - buffered types always exist; unbuffered feasibility follows the
//     port/rate rules;
//   - interface area is positive and buffered > unbuffered for the same
//     controller technology.
func TestCandidateGridInvariants(t *testing.T) {
	am := kernel.DefaultArea()
	id := 0
	for _, inPorts := range []int{1, 2, 3} {
		for _, rate := range []int{1, 2, 4, 8} {
			for _, outRate := range []int{2, 4} {
				for _, latency := range []int{1, 8, 32} {
					for _, pipelined := range []bool{true, false} {
						for _, n := range []int{1, 16, 160} {
							id++
							b := &ip.IP{
								ID: "G", Name: "grid", Funcs: []string{"f"},
								InPorts: inPorts, OutPorts: inPorts,
								InRate: rate, OutRate: outRate,
								Latency: latency, Pipelined: pipelined, Area: 3,
							}
							s := Shape{NIn: n, NOut: n, TSW: 1 << 40, TC: int64(n) * 3}
							cands := Candidates(b, s, am)
							if len(cands) < 2 {
								t.Fatalf("case %d: %d candidates; buffered types must always exist", id, len(cands))
							}
							seen := map[Type]Candidate{}
							for _, c := range cands {
								seen[c.Type] = c
								if c.Gain+c.Exec != s.TSW {
									t.Fatalf("case %d %v: gain %d + exec %d != TSW", id, c.Type, c.Gain, c.Exec)
								}
								if c.Exec <= 0 {
									t.Fatalf("case %d %v: non-positive exec %d", id, c.Type, c.Exec)
								}
								if c.IfaceArea <= 0 {
									t.Fatalf("case %d %v: non-positive area", id, c.Type)
								}
								if !c.Type.SupportsParallel() && c.TCUsed != 0 {
									t.Fatalf("case %d %v: parallel credit on unbuffered type", id, c.Type)
								}
								if c.Type.SupportsParallel() {
									want := c.TIFIn + max64(c.TIP, c.TB) + c.TIFOut - c.TCUsed
									if c.Exec != want {
										t.Fatalf("case %d %v: exec %d != equation %d", id, c.Type, c.Exec, want)
									}
									if c.TCUsed > c.TIP || c.TCUsed > s.TC {
										t.Fatalf("case %d %v: TCUsed %d exceeds MIN(TIP=%d, TC=%d)", id, c.Type, c.TCUsed, c.TIP, s.TC)
									}
								} else if c.Exec != max64(c.TIP, c.TIF) {
									t.Fatalf("case %d %v: exec %d != MAX(TIP=%d, TIF=%d)", id, c.Type, c.Exec, c.TIP, c.TIF)
								}
							}
							// Feasibility rules.
							_, has0 := seen[Type0]
							_, has2 := seen[Type2]
							wantUnbuffered := inPorts <= 2
							want0 := wantUnbuffered && rate == outRate
							if has0 != want0 {
								t.Fatalf("case %d: type0 feasibility = %v, want %v (ports=%d rates=%d/%d)",
									id, has0, want0, inPorts, rate, outRate)
							}
							if has2 != wantUnbuffered {
								t.Fatalf("case %d: type2 feasibility = %v, want %v", id, has2, wantUnbuffered)
							}
							// Area ordering within controller technology.
							if c0, ok := seen[Type0]; ok {
								if c1 := seen[Type1]; c1.IfaceArea <= c0.IfaceArea {
									t.Fatalf("case %d: IF1 area %g <= IF0 area %g", id, c1.IfaceArea, c0.IfaceArea)
								}
							}
							if c2, ok := seen[Type2]; ok {
								if c3 := seen[Type3]; c3.IfaceArea <= c2.IfaceArea {
									t.Fatalf("case %d: IF3 area %g <= IF2 area %g", id, c3.IfaceArea, c2.IfaceArea)
								}
							}
						}
					}
				}
			}
		}
	}
}
