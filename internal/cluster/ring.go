// Package cluster is partitad's routing layer: a static-peer-list
// consistent-hash ring over job content addresses, peer health probing
// that drives ring membership, request forwarding with failover to the
// ring successor, and cross-node result-cache peeks so a cache hit
// anywhere serves everywhere.
//
// The layering deliberately mirrors the storage/planner split the rest
// of the repository follows: internal/service stays a single-node
// execution core with no knowledge of peers, and this package owns
// every routing decision. The two meet at exactly two hooks —
// service.Config.RemoteLookup (peer cache peeks before a solve) and
// service.Config.OwnerOf (ownership stamped on accepted jobs) — plus
// the HTTP surface, which a Node wraps and re-exposes.
//
// Failover is safe because the substrate already is: jobs are
// content-addressed (partita.CanonicalHash), so resubmitting a job to a
// dead owner's ring successor either coalesces, hits a cache, or
// re-runs to the identical answer — at-least-once delivery with
// exactly-once effect, now across nodes.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the number of virtual nodes each peer contributes
// to the ring. 128 keeps the expected ownership imbalance for a
// handful of peers within a few percent while the ring stays tiny.
const defaultReplicas = 128

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a static peer list.
// Liveness is not baked in: Owner filters through a caller-supplied
// predicate, so ring membership follows peer health with no rebuild —
// exactly the "dead owner's range drains to its successor" behavior,
// because the successor's virtual nodes are the next alive points
// clockwise of every dead point.
type Ring struct {
	peers  []string
	points []ringPoint
}

// NewRing builds a ring over peers with the given number of virtual
// nodes per peer (<=0 uses the default). Peer order does not matter;
// duplicate peers are an error.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{peers: append([]string(nil), peers...)}
	for _, p := range r.peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		base := fnvHash(p)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Hash ties (vanishingly rare) break by name so every node
		// computes the identical ring.
		return r.points[i].peer < r.points[k].peer
	})
	sort.Strings(r.peers)
	return r, nil
}

// ringHash places a string on the circle: FNV-64a (fast, stable across
// processes and architectures — every node must agree on the ring)
// finalized through splitmix64. Raw FNV of near-identical strings (peer
// URLs, hex keys) clusters badly enough to skew ownership 3:1; the
// finalizer restores avalanche.
func ringHash(s string) uint64 { return mix64(fnvHash(s)) }

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Peers returns the static peer list, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key among those alive(peer) admits
// (alive == nil admits everyone). It reports false only when the
// predicate rejects every peer.
func (r *Ring) Owner(key string, alive func(string) bool) (string, bool) {
	start := r.search(key)
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)].peer
		if alive == nil || alive(p) {
			return p, true
		}
	}
	return "", false
}

// Order returns every peer in the key's failover-preference order: the
// static owner first, then each distinct peer as it next appears
// clockwise. Forwarding walks this list when owners fail.
func (r *Ring) Order(key string) []string {
	start := r.search(key)
	out := make([]string, 0, len(r.peers))
	seen := map[string]bool{}
	for off := 0; off < len(r.points) && len(out) < len(r.peers); off++ {
		p := r.points[(start+off)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// search locates the first ring point at or clockwise of the key.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
