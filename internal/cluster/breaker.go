package cluster

import (
	"sync"
	"time"
)

// breaker is a per-peer circuit breaker for the batch-point work
// client. It exists to stop a flapping peer from eating every point's
// retry budget: after Failures consecutive dispatch failures the
// peer's circuit opens and dispatches fail fast for Cooldown, after
// which a single probe dispatch is let through (half-open) — its
// outcome re-opens or closes the circuit. The breaker is advisory
// routing state only; the prober remains the authority on ring
// membership, and every breaker-observed failure is also reported to
// it.
type breaker struct {
	failures int
	cooldown time.Duration
	now      func() time.Time

	mu sync.Mutex
	st map[string]*breakerState
}

type breakerState struct {
	fails     int
	openUntil time.Time
	probing   bool
}

func newBreaker(failures int, cooldown time.Duration) *breaker {
	return &breaker{
		failures: failures,
		cooldown: cooldown,
		now:      time.Now,
		st:       map[string]*breakerState{},
	}
}

// allow reports whether a dispatch to peer may proceed: true while the
// circuit is closed, false while open, and true exactly once per
// cooldown expiry as the half-open probe.
func (b *breaker) allow(peer string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(peer)
	if st.openUntil.IsZero() {
		return true
	}
	if b.now().Before(st.openUntil) {
		return false
	}
	if st.probing {
		return false
	}
	st.probing = true
	return true
}

// open reports whether the circuit is currently open (cooldown not yet
// expired), for routing decisions that should skip the peer entirely.
func (b *breaker) open(peer string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(peer)
	return !st.openUntil.IsZero() && b.now().Before(st.openUntil)
}

// failure records one failed dispatch and reports whether it opened
// (or re-opened) the circuit. A failed half-open probe re-opens
// immediately; otherwise the failure counts toward the threshold.
func (b *breaker) failure(peer string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(peer)
	if st.probing || !st.openUntil.IsZero() && !b.now().Before(st.openUntil) {
		st.probing = false
		st.fails = 0
		st.openUntil = b.now().Add(b.cooldown)
		return true
	}
	st.fails++
	if st.fails >= b.failures {
		st.fails = 0
		st.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// success records one successful dispatch, closing the circuit.
func (b *breaker) success(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(peer)
	st.fails = 0
	st.openUntil = time.Time{}
	st.probing = false
}

func (b *breaker) state(peer string) *breakerState {
	st, ok := b.st[peer]
	if !ok {
		st = &breakerState{}
		b.st[peer] = st
	}
	return st
}
