package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics are the cluster-layer counters, rendered as an extra section
// appended to the core service's /metrics output. Keeping them here —
// not in service.Metrics — preserves the routing/execution split: a
// single-node daemon's metrics page has no cluster rows at all.
type Metrics struct {
	forwardsSubmit  atomic.Uint64
	forwardsPoll    atomic.Uint64
	forwardFailures atomic.Uint64
	failoverAccepts atomic.Uint64
	peerCacheHits   atomic.Uint64
	peerCacheMisses atomic.Uint64
	probeFailures   atomic.Uint64

	// Batch fan-out work-client counters (see work.go).
	remoteDispatches       atomic.Uint64
	remoteDispatchFailures atomic.Uint64
	remoteRetries          atomic.Uint64
	breakerOpens           atomic.Uint64
}

// write renders the cluster metric section in Prometheus text format.
func (m *Metrics) write(w io.Writer, statuses []PeerStatus) {
	alive := 0
	for _, s := range statuses {
		if s.Alive {
			alive++
		}
	}
	fmt.Fprintf(w, "# HELP partitad_cluster_peers Remote peers in the static ring configuration.\n# TYPE partitad_cluster_peers gauge\npartitad_cluster_peers %d\n", len(statuses))
	fmt.Fprintf(w, "# HELP partitad_cluster_peers_alive Remote peers currently considered alive.\n# TYPE partitad_cluster_peers_alive gauge\npartitad_cluster_peers_alive %d\n", alive)
	fmt.Fprintf(w, "# HELP partitad_cluster_peer_up Per-peer liveness as seen from this node.\n# TYPE partitad_cluster_peer_up gauge\n")
	for _, s := range statuses {
		fmt.Fprintf(w, "partitad_cluster_peer_up{peer=%q} %d\n", s.Name, b2i(s.Alive))
	}
	fmt.Fprintf(w, "# HELP partitad_cluster_forwards_total Requests forwarded to their ring owner, by kind.\n# TYPE partitad_cluster_forwards_total counter\n")
	fmt.Fprintf(w, "partitad_cluster_forwards_total{kind=\"submit\"} %d\n", m.forwardsSubmit.Load())
	fmt.Fprintf(w, "partitad_cluster_forwards_total{kind=\"poll\"} %d\n", m.forwardsPoll.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_forward_failures_total Forwarded calls that failed (network error, timeout, or peer 5xx).\n# TYPE partitad_cluster_forward_failures_total counter\npartitad_cluster_forward_failures_total %d\n", m.forwardFailures.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_failover_accepts_total Jobs accepted by this node in place of an unreachable static owner.\n# TYPE partitad_cluster_failover_accepts_total counter\npartitad_cluster_failover_accepts_total %d\n", m.failoverAccepts.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_peer_cache_hits_total Solves avoided because a peer's result cache answered.\n# TYPE partitad_cluster_peer_cache_hits_total counter\npartitad_cluster_peer_cache_hits_total %d\n", m.peerCacheHits.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_peer_cache_misses_total Peer cache peeks that found no result anywhere.\n# TYPE partitad_cluster_peer_cache_misses_total counter\npartitad_cluster_peer_cache_misses_total %d\n", m.peerCacheMisses.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_probe_failures_total Health probes that failed.\n# TYPE partitad_cluster_probe_failures_total counter\npartitad_cluster_probe_failures_total %d\n", m.probeFailures.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_point_dispatches_total Batch-point dispatch attempts sent to ring peers.\n# TYPE partitad_cluster_point_dispatches_total counter\npartitad_cluster_point_dispatches_total %d\n", m.remoteDispatches.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_point_dispatch_failures_total Batch-point dispatch attempts that failed.\n# TYPE partitad_cluster_point_dispatch_failures_total counter\npartitad_cluster_point_dispatch_failures_total %d\n", m.remoteDispatchFailures.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_point_retries_total Batch-point dispatch retries.\n# TYPE partitad_cluster_point_retries_total counter\npartitad_cluster_point_retries_total %d\n", m.remoteRetries.Load())
	fmt.Fprintf(w, "# HELP partitad_cluster_breaker_opens_total Per-peer work circuits opened.\n# TYPE partitad_cluster_breaker_opens_total counter\npartitad_cluster_breaker_opens_total %d\n", m.breakerOpens.Load())
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
