package cluster

// Fan-out sweep benchmark: a 64-point GSM sweep batch on one node
// versus the same batch fanned out across a three-node ring with
// -batch-fanout semantics (points ring-routed to their owners, results
// flowing back into the coordinator's batch). Results merge into
// BENCH_sweep.json at the repo root (override with BENCH_SWEEP_OUT)
// under the "batch_fanout_vs_single_node_gsm" key:
//
//	go test -run NoTests -bench BenchmarkSweepFanout -benchtime 1x ./internal/cluster
//
// This is a smoke benchmark, not a speedup gate: remote points are
// solved as independent jobs on their owners (no cross-node plateau
// reuse yet), so the fan-out only wins once per-point solve time
// dominates the dispatch overhead. The entry records both wall clocks
// so the tradeoff is visible over time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"partita/internal/service"
)

// fanoutBenchEntry mirrors the service package's sweepBenchEntry JSON
// schema (both packages merge into the same BENCH_sweep.json).
type fanoutBenchEntry struct {
	Points      int     `json:"points"`
	PerPointSec float64 `json:"perPointSec"`
	PipelineSec float64 `json:"pipelineSec"`
	Speedup     float64 `json:"speedup"`
	BatchSolved int     `json:"batchSolved,omitempty"`
	BatchReused int     `json:"batchReused,omitempty"`
	BatchRemote int     `json:"batchRemote,omitempty"`
}

// benchOutPath locates BENCH_sweep.json: $BENCH_SWEEP_OUT if set, else
// next to go.mod.
func benchOutPath() (string, error) {
	if p := os.Getenv("BENCH_SWEEP_OUT"); p != "" {
		return p, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_sweep.json"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// recordFanoutBench merges one entry into BENCH_sweep.json, preserving
// entries written by other packages byte-for-byte.
func recordFanoutBench(b *testing.B, name string, e fanoutBenchEntry) {
	path, err := benchOutPath()
	if err != nil {
		b.Logf("bench output skipped: %v", err)
		return
	}
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	raw, err := json.Marshal(e)
	if err != nil {
		b.Fatal(err)
	}
	doc[name] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func waitJobTB(t testing.TB, j *service.Job) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if st := j.View().Status; st == service.StatusDone || st == service.StatusFailed {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished: %+v", j.ID, j.View())
}

func waitBatchTB(t testing.TB, b *service.Batch) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		if v := b.View(false); v.Status == service.StatusDone || v.Status == service.StatusFailed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s never finished: %+v", b.ID, b.View(false))
}

func shutdownTB(t testing.TB, s *service.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// gsmBatch builds the N-point GSM sweep batch spec over evenly spaced
// gains up to the design's reachable maximum.
func gsmBatch(t testing.TB, s *service.Server, points int) service.BatchSpec {
	t.Helper()
	probe, err := s.Submit(service.JobSpec{Kind: service.KindAnalyze, Workload: "gsm"})
	if err != nil {
		t.Fatal(err)
	}
	waitJobTB(t, probe)
	res := probe.Result()
	if res == nil || res.Analyze == nil {
		t.Fatalf("gsm analyze returned no result: %+v", probe.View())
	}
	spec := service.BatchSpec{Defaults: service.JobSpec{Workload: "gsm"}}
	for i := 1; i <= points; i++ {
		spec.Points = append(spec.Points, service.BatchPoint{
			RequiredGain: res.Analyze.MaxReachableGain * int64(i) / int64(points),
		})
	}
	return spec
}

// TestClusterBatchFanoutSpreadsPoints is the in-process integration
// check behind the benchmark: a batch submitted to one ring member
// really runs points on its peers, attributes them, and fails none.
func TestClusterBatchFanoutSpreadsPoints(t *testing.T) {
	nodes := startClusterOpts(t, 3, staticProbe(), nil, true)
	spec := gsmBatch(t, nodes[0].srv, 12)
	b, err := nodes[0].srv.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatchTB(t, b)

	v := b.View(true)
	sum := *v.Summary
	if sum.Failed != 0 {
		t.Fatalf("fanned-out batch failed points: %+v", sum)
	}
	if sum.Remote == 0 {
		t.Fatalf("no point ran on a peer (12 points over 3 nodes): %+v", sum)
	}
	self := nodes[0].node.NodeName()
	for _, p := range v.Points {
		if p.Disposition == service.DispositionRemote && (p.Node == "" || p.Node == self) {
			t.Errorf("remote point %d attributed to %q", p.Index, p.Node)
		}
	}
}

func BenchmarkSweepFanoutGSM(b *testing.B) {
	const points = 64
	var entry fanoutBenchEntry
	entry.Points = points
	for i := 0; i < b.N; i++ {
		// Baseline: the same 64-point batch on one node, two workers —
		// the shared-analysis local pipeline.
		s1 := service.New(service.Config{Workers: 2, QueueDepth: 1024, ResultCacheSize: 1024})
		s1.Start()
		spec := gsmBatch(b, s1, points)
		t0 := time.Now()
		lb, err := s1.SubmitBatch(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitBatchTB(b, lb)
		single := time.Since(t0)
		if sum := lb.View(false).Summary; sum.Failed != 0 {
			b.Fatalf("single-node batch: %+v", sum)
		}
		shutdownTB(b, s1)

		// Fan-out: three ring members, two workers each, points routed
		// to their owners over real HTTP.
		nodes := startClusterOpts(b, 3, staticProbe(), nil, true)
		warm := gsmBatch(b, nodes[0].srv, points) // analyze once before timing
		t0 = time.Now()
		fb, err := nodes[0].srv.SubmitBatch(warm)
		if err != nil {
			b.Fatal(err)
		}
		waitBatchTB(b, fb)
		fanned := time.Since(t0)
		sum := *fb.View(false).Summary
		if sum.Failed != 0 {
			b.Fatalf("fanned-out batch: %+v", sum)
		}

		entry.PerPointSec = single.Seconds()
		entry.PipelineSec = fanned.Seconds()
		entry.Speedup = single.Seconds() / fanned.Seconds()
		entry.BatchSolved = sum.Solved
		entry.BatchReused = sum.Reused
		entry.BatchRemote = sum.Remote
	}
	b.ReportMetric(entry.Speedup, "speedup_x")
	b.ReportMetric(entry.PipelineSec, "fanout_sec")
	b.ReportMetric(float64(entry.BatchRemote), "remote_points")
	recordFanoutBench(b, "batch_fanout_vs_single_node_gsm", entry)
}
