package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"partita"
	"partita/internal/faults"
	"partita/internal/service"
)

// clusterSource is a tiny one-kernel program so in-process cluster
// tests solve in microseconds.
const clusterSource = `
xmem int signal[16] = {5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8};
ymem int taps[4] = {8192, 16384, 8192, 4096};
xmem int filtered[16];

int fir(xmem int in[], ymem int c[], xmem int out[], int n, int k) {
	int i; int j; int acc;
	for (i = 0; i + k <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < k; j = j + 1) { acc = acc + in[i + j] * c[j]; }
		out[i] = acc >> 15;
	}
	return out[0];
}

int run() { return fir(signal, taps, filtered, 16, 4); }

int main() { return run(); }
`

func clusterSpec(rg int64) service.JobSpec {
	return service.JobSpec{
		Kind:   service.KindSelect,
		Source: clusterSource,
		Root:   "run",
		Catalog: []*partita.IP{{
			ID: "FIR8", Name: "FIR engine", Funcs: []string{"fir"},
			InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
			Latency: 8, Pipelined: true, Area: 5,
		}},
		RequiredGain: rg,
	}
}

// testNode is one in-process cluster member: a real service core behind
// a real cluster Node, served over a real TCP listener.
type testNode struct {
	node *Node
	srv  *service.Server
	ts   *httptest.Server
	url  string
}

func (n *testNode) kill() { n.ts.Close() }

// startCluster boots size in-process nodes that know each other by
// their pre-reserved listener addresses.
func startCluster(t testing.TB, size int, probe ProbeConfig, inj *faults.Injector) []*testNode {
	return startClusterOpts(t, size, probe, inj, false)
}

// startClusterOpts is startCluster with batch fan-out optionally wired
// into every node's service core (used by the fan-out benchmarks).
func startClusterOpts(t testing.TB, size int, probe ProbeConfig, inj *faults.Injector, fanout bool) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, size)
	peers := make([]string, size)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*testNode, size)
	for i := range nodes {
		node, err := New(Config{
			Self:        peers[i],
			Peers:       peers,
			Probe:       probe,
			Faults:      inj,
			PeekTimeout: 2 * time.Second, // generous: CI machines stall
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		scfg := service.Config{
			Workers:      2,
			NodeName:     node.NodeName(),
			RemoteLookup: node.RemoteLookup,
			OwnerOf:      node.OwnerOf,
		}
		if fanout {
			scfg.BatchFanout = true
			scfg.RoutePoint = node.RoutePoint
			scfg.RemoteSolve = node.RemoteSolve
		}
		srv, err := service.Open(scfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		node.Attach(srv)
		ts := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: node.Handler()},
		}
		ts.Start()
		node.Start()
		nodes[i] = &testNode{node: node, srv: srv, ts: ts, url: peers[i]}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.node.Stop()
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = n.srv.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// staticProbe keeps every peer alive for the whole test: liveness only
// changes when a test reports failures explicitly.
func staticProbe() ProbeConfig {
	return ProbeConfig{Interval: time.Hour, FailAfter: 1000}
}

// fastProbe detects death within a few tens of milliseconds.
func fastProbe() ProbeConfig {
	return ProbeConfig{
		Interval:  20 * time.Millisecond,
		Timeout:   250 * time.Millisecond,
		FailAfter: 2,
		PassAfter: 2,
	}
}

// specKey computes the content address the ring routes by.
func specKey(t *testing.T, spec service.JobSpec) string {
	t.Helper()
	key, err := service.ResultKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// specOwnedBy finds a spec whose static ring owner is nodes[want].
func specOwnedBy(t *testing.T, nodes []*testNode, want int) service.JobSpec {
	t.Helper()
	for rg := int64(1); rg < 500; rg++ {
		spec := clusterSpec(rg)
		owner, _ := nodes[0].node.ring.Owner(specKey(t, spec), nil)
		if owner == nodes[want].url {
			return spec
		}
	}
	t.Fatal("no spec hashed to the requested owner in 500 tries")
	return service.JobSpec{}
}

func postJob(t *testing.T, url string, spec service.JobSpec, forwarded bool) (service.JobView, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if forwarded {
		req.Header.Set(ForwardedHeader, "test")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func pollDone(t *testing.T, url, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id + "?wait=1s")
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case service.StatusDone:
			return v
		case service.StatusFailed:
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
	}
	t.Fatalf("job %s never finished", id)
	return service.JobView{}
}

// metricValue scrapes one un-labeled metric from a node's /metrics.
func metricValue(t *testing.T, url, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func mustMetric(t *testing.T, url, name string) float64 {
	t.Helper()
	v, ok := metricValue(t, url, name)
	if !ok {
		t.Fatalf("metric %s missing from %s/metrics", name, url)
	}
	return v
}

// A submission landing on a non-owner is forwarded: the job runs on its
// ring owner, carries the owner's ID prefix, and any node can poll it.
func TestSubmitForwardedToOwner(t *testing.T) {
	nodes := startCluster(t, 3, staticProbe(), nil)
	spec := specOwnedBy(t, nodes, 0)
	owner, submitter, third := nodes[0], nodes[1], nodes[2]

	v, code := postJob(t, submitter.url, spec, false)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if !strings.HasPrefix(v.ID, owner.node.NodeName()+"-j") {
		t.Fatalf("job ID %q does not carry owner prefix %q", v.ID, owner.node.NodeName())
	}
	if v.Cluster == nil || v.Cluster.Node != owner.node.NodeName() || v.Cluster.Failover {
		t.Fatalf("ownership = %+v, want non-failover accept on %s", v.Cluster, owner.node.NodeName())
	}
	if got := mustMetric(t, submitter.url, `partitad_cluster_forwards_total{kind="submit"}`); got != 1 {
		t.Fatalf("submit forwards = %v, want 1", got)
	}

	// The job must exist on the owner, not the submitter's core.
	if _, ok := owner.srv.Job(v.ID); !ok {
		t.Fatalf("job %s not on owner", v.ID)
	}
	if _, ok := submitter.srv.Job(v.ID); ok {
		t.Fatalf("job %s duplicated on submitter", v.ID)
	}

	// A third node routes the poll by ID prefix.
	done := pollDone(t, third.url, v.ID)
	if done.Result == nil || done.Result.Selection == nil {
		t.Fatalf("done view missing selection result: %+v", done)
	}
	if got := mustMetric(t, third.url, `partitad_cluster_forwards_total{kind="poll"}`); got < 1 {
		t.Fatalf("poll forwards = %v, want >= 1", got)
	}
}

// The cross-node cache: a result solved (and cached) on its owner is
// served to another node's identical job by a peer cache peek — no
// second solve anywhere.
func TestPeerCachePeekServesWithoutResolve(t *testing.T) {
	nodes := startCluster(t, 3, staticProbe(), nil)
	spec := specOwnedBy(t, nodes, 0)
	owner, other := nodes[0], nodes[1]

	v, code := postJob(t, owner.url, spec, false)
	if code >= 300 {
		t.Fatalf("submit = %d", code)
	}
	pollDone(t, owner.url, v.ID)

	// Force local acceptance on a non-owner (the forwarded header is how
	// peers hand a node work), so its only escape from a local solve is
	// the peer cache peek.
	v2, code := postJob(t, other.url, spec, true)
	if code >= 300 {
		t.Fatalf("forwarded submit = %d", code)
	}
	done := pollDone(t, other.url, v2.ID)
	if !done.Cached {
		t.Fatalf("job %s not served from cache: %+v", v2.ID, done)
	}
	if got := mustMetric(t, other.url, "partitad_solves_started_total"); got != 0 {
		t.Fatalf("non-owner started %v solves, want 0 (peer cache must answer)", got)
	}
	if got := mustMetric(t, other.url, "partitad_cluster_peer_cache_hits_total"); got != 1 {
		t.Fatalf("peer cache hits = %v, want 1", got)
	}
	if done.Cluster == nil || !done.Cluster.Failover {
		t.Fatalf("forwarded accept on non-owner should be marked failover: %+v", done.Cluster)
	}
}

// SIGKILL-grade owner death: the forward fails at the wire and the
// submission walks down the ring order — the job still completes, on a
// different node, marked as a failover accept.
func TestSubmitFailsOverWhenOwnerDies(t *testing.T) {
	nodes := startCluster(t, 3, fastProbe(), nil)
	spec := specOwnedBy(t, nodes, 0)
	owner, submitter := nodes[0], nodes[1]

	owner.kill()

	v, code := postJob(t, submitter.url, spec, false)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit after owner death = %d", code)
	}
	if v.Cluster == nil || !v.Cluster.Failover {
		t.Fatalf("ownership = %+v, want failover accept", v.Cluster)
	}
	if v.Cluster.Owner != owner.node.NodeName() {
		t.Fatalf("static owner recorded as %q, want %q", v.Cluster.Owner, owner.node.NodeName())
	}
	if v.Cluster.Node == owner.node.NodeName() {
		t.Fatal("job accepted by the dead owner")
	}
	done := pollDone(t, submitter.url, v.ID)
	if done.Result == nil {
		t.Fatalf("failover job finished without result: %+v", done)
	}

	// The prober notices too: within a few intervals the dead peer drops
	// out of the live ring and /v1/cluster/owner reports the successor.
	key := specKey(t, spec)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(submitter.url + "/v1/cluster/owner/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Owner    string `json:"owner"`
			Failover bool   `json:"failover"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Failover && out.Owner != owner.node.NodeName() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner endpoint still reports dead peer: %+v", out)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// peer.partition on the submitting node makes every peer call fail, so
// a non-owned submission is accepted locally as a failover — the chaos
// harness leans on this to simulate asymmetric partitions.
func TestPartitionFaultForcesLocalAccept(t *testing.T) {
	inj, err := faults.Parse("seed=3,peer.partition=1")
	if err != nil {
		t.Fatal(err)
	}
	nodes := startCluster(t, 2, staticProbe(), inj)
	spec := specOwnedBy(t, nodes, 0)
	submitter := nodes[1]

	v, code := postJob(t, submitter.url, spec, false)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if v.Cluster == nil || !v.Cluster.Failover || v.Cluster.Node != submitter.node.NodeName() {
		t.Fatalf("ownership = %+v, want local failover accept on %s", v.Cluster, submitter.node.NodeName())
	}
	if got := mustMetric(t, submitter.url, "partitad_cluster_forward_failures_total"); got < 1 {
		t.Fatalf("forward failures = %v, want >= 1", got)
	}
	pollDone(t, submitter.url, v.ID)
}

// GET /v1/jobs merges every live node's job table.
func TestListMergesAllNodes(t *testing.T) {
	nodes := startCluster(t, 3, staticProbe(), nil)
	var ids []string
	for i, rg := range []int64{11, 22} {
		v, code := postJob(t, nodes[i].url, clusterSpec(rg), true) // forwarded: pin locally
		if code >= 300 {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, v.ID)
		pollDone(t, nodes[i].url, v.ID)
	}
	resp, err := http.Get(nodes[2].url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []service.JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, j := range out.Jobs {
		got[j.ID] = true
	}
	for _, id := range ids {
		if !got[id] {
			t.Fatalf("merged list missing %s (have %v)", id, got)
		}
	}
}

// Polling a job that lives on a node the ID prefix does not name (here:
// a forwarded accept pinned to a non-owner) falls back to the locate
// sweep.
func TestPollLocateSweepFindsUnroutableJobs(t *testing.T) {
	nodes := startCluster(t, 3, staticProbe(), nil)
	spec := specOwnedBy(t, nodes, 0)
	// Pin the job on node 1; its ID prefix names node 1, so ask node 2
	// while node 1's prefix is valid — then ask for a doctored ID whose
	// prefix routes nowhere.
	v, code := postJob(t, nodes[1].url, spec, true)
	if code >= 300 {
		t.Fatalf("submit = %d", code)
	}
	pollDone(t, nodes[2].url, v.ID)
}

func TestRingEndpointReportsPeers(t *testing.T) {
	nodes := startCluster(t, 3, staticProbe(), nil)
	resp, err := http.Get(nodes[0].url + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Self  string       `json:"self"`
		Peers []PeerStatus `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Self != nodes[0].node.NodeName() {
		t.Fatalf("self = %q, want %q", out.Self, nodes[0].node.NodeName())
	}
	if len(out.Peers) != 2 {
		t.Fatalf("ring endpoint lists %d remote peers, want 2", len(out.Peers))
	}
	for _, p := range out.Peers {
		if !p.Alive || p.Name == "" {
			t.Fatalf("peer status = %+v, want alive with a name", p)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("single-peer cluster accepted")
	}
	if _, err := New(Config{Self: "http://c:1", Peers: []string{"http://a:1", "http://b:1"}}); err == nil {
		t.Fatal("self outside peer list accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "ftp://b:1"}}); err == nil {
		t.Fatal("non-http peer accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "https://a:1"}}); err == nil {
		t.Fatal("colliding node names accepted")
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"http://127.0.0.1:7001":  "127-0-0-1-7001",
		"https://node-a.example": "node-a-example",
		"http://[::1]:8080":      "1-8080",
	} {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
