package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"partita/internal/faults"
	"partita/internal/service"
)

// This file is the batch fan-out work client: the service core asks
// RoutePoint where a point's ring owner lives and RemoteSolve to run it
// there. The client owns the per-point failure policy — one timeout per
// attempt, capped exponential backoff with jitter between attempts, a
// retry budget per point, and a per-peer circuit breaker — and feeds
// every observed failure into the health prober so batch traffic
// detects dead peers as fast as forwarded submits do. The service never
// sees any of that: a dispatch either returns a result or an error, and
// on error the point requeues locally.

// RoutePoint is the service.Config.RoutePoint hook: it names the live
// ring peer a batch point should run on, walking the key's failover
// order and skipping dead peers and open work circuits. ("", false)
// means run the point locally — either this node is the first live
// choice for the key, or no remote peer is usable.
func (n *Node) RoutePoint(key string) (string, bool) {
	for _, peer := range n.ring.Order(key) {
		if peer == n.self {
			return "", false
		}
		if !n.alive(peer) || n.breaker.open(peer) {
			continue
		}
		return n.names[peer], true
	}
	return "", false
}

// RemoteSolve is the service.Config.RemoteSolve hook: it runs one batch
// point on the named peer, returning the peer's result and how many
// retry attempts were spent. The context carries the point's lease
// deadline; every attempt is additionally bounded by PointTimeout. An
// error (retry budget exhausted, lease expired, circuit open) means the
// caller requeues the point locally.
func (n *Node) RemoteSolve(ctx context.Context, peerName string, spec service.JobSpec) (*service.JobResult, int, error) {
	peer, ok := n.urls[peerName]
	if !ok {
		return nil, 0, fmt.Errorf("cluster: unknown peer %q", peerName)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, 0, err
	}
	retries := 0
	var lastErr error
	for attempt := 0; attempt <= n.cfg.PointRetries; attempt++ {
		if attempt > 0 {
			retries++
			n.metrics.remoteRetries.Add(1)
			select {
			case <-time.After(n.pointBackoff(attempt)):
			case <-ctx.Done():
				return nil, retries, fmt.Errorf("cluster: point dispatch to %s: %w (last error: %v)", peerName, ctx.Err(), lastErr)
			}
		}
		if !n.breaker.allow(peer) {
			lastErr = fmt.Errorf("cluster: %s: work circuit open", peerName)
			continue
		}
		n.metrics.remoteDispatches.Add(1)
		res, err := n.solvePointOnce(ctx, peer, body)
		if err == nil {
			n.breaker.success(peer)
			return res, retries, nil
		}
		lastErr = err
		n.metrics.remoteDispatchFailures.Add(1)
		if n.breaker.failure(peer) {
			n.metrics.breakerOpens.Add(1)
			n.cfg.Logf("cluster: work circuit to %s opened (%v)", peerName, err)
		}
		n.prober.ReportFailure(peer, err)
		if ctx.Err() != nil {
			return nil, retries, fmt.Errorf("cluster: point dispatch to %s: %w (last error: %v)", peerName, ctx.Err(), err)
		}
	}
	return nil, retries, fmt.Errorf("cluster: point dispatch to %s failed after %d attempts: %w", peerName, n.cfg.PointRetries+1, lastErr)
}

// pointBackoff is the delay before retry attempt n (1-based): base
// doubled per attempt, capped, then jittered into [d/2, d] so a burst
// of failed points does not retry in lockstep against the same peer.
func (n *Node) pointBackoff(attempt int) time.Duration {
	d := n.cfg.PointBackoff << uint(attempt-1)
	if d > n.cfg.PointBackoffCap || d <= 0 {
		d = n.cfg.PointBackoffCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// solvePointOnce performs one dispatch attempt: submit the point's spec
// to the peer (stamped with the remaining attempt budget as the
// propagated caller deadline), then poll the job to completion. The
// remote.point.* fault points fire here, per attempt, so the injected
// failure rates exercise the retry and breaker paths exactly like real
// peer failures would.
func (n *Node) solvePointOnce(ctx context.Context, peer string, body []byte) (*service.JobResult, error) {
	if n.inj.Fire(faults.RemotePoint5xx) {
		return nil, fmt.Errorf("cluster: %s: injected %s (HTTP 502)", peer, faults.RemotePoint5xx)
	}
	if n.inj.Fire(faults.RemotePointTimeout) {
		delay := n.inj.Duration(faults.RemotePointTimeoutDelay, 250*time.Millisecond)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("cluster: %s: injected %s", peer, faults.RemotePointTimeout)
	}
	actx, cancel := context.WithTimeout(ctx, n.cfg.PointTimeout)
	defer cancel()
	extra := map[string]string{}
	if dl, ok := actx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			extra[service.DeadlineHeader] = strconv.FormatInt(ms, 10)
		}
	}
	resp, err := n.peerDo(actx, peer, http.MethodPost, "/v1/jobs", body, extra)
	if err != nil {
		return nil, err
	}
	var view service.JobView
	if err := decodeResponse(resp, &view); err != nil {
		return nil, err
	}
	for {
		switch view.Status {
		case service.StatusDone:
			if view.Result == nil {
				return nil, fmt.Errorf("cluster: %s: job %s done without result", peer, view.ID)
			}
			return view.Result, nil
		case service.StatusFailed:
			return nil, fmt.Errorf("cluster: %s: job %s failed: %s", peer, view.ID, view.Error)
		}
		resp, err := n.peerDo(actx, peer, http.MethodGet, "/v1/jobs/"+url.PathEscape(view.ID)+"?wait=5s", nil, nil)
		if err != nil {
			return nil, err
		}
		if err := decodeResponse(resp, &view); err != nil {
			return nil, err
		}
	}
}

// decodeResponse consumes one peer response into v, mapping non-2xx
// statuses to errors.
func decodeResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: peer answered HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
