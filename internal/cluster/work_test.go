package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"partita/internal/faults"
	"partita/internal/service"
)

func TestBreakerStateMachine(t *testing.T) {
	clk := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return clk }

	if !b.allow("p") || b.open("p") {
		t.Fatal("fresh circuit must be closed")
	}
	if b.failure("p") || b.failure("p") {
		t.Fatal("circuit opened below the failure threshold")
	}
	if !b.allow("p") {
		t.Fatal("circuit must stay closed below the threshold")
	}
	if !b.failure("p") {
		t.Fatal("third consecutive failure must open the circuit")
	}
	if b.allow("p") || !b.open("p") {
		t.Fatal("open circuit must fail fast")
	}

	// Cooldown expiry: exactly one half-open probe gets through.
	clk = clk.Add(time.Minute + time.Second)
	if b.open("p") {
		t.Fatal("cooldown expired, circuit must not report open")
	}
	if !b.allow("p") {
		t.Fatal("first dispatch after cooldown must be allowed as the probe")
	}
	if b.allow("p") {
		t.Fatal("only one half-open probe may proceed")
	}

	// A failed probe re-opens immediately, without a fresh threshold.
	if !b.failure("p") {
		t.Fatal("failed half-open probe must re-open the circuit")
	}
	if b.allow("p") {
		t.Fatal("re-opened circuit must fail fast")
	}

	// A successful probe closes the circuit fully.
	clk = clk.Add(time.Minute + time.Second)
	if !b.allow("p") {
		t.Fatal("probe after second cooldown must be allowed")
	}
	b.success("p")
	for i := 0; i < 5; i++ {
		if !b.allow("p") || b.open("p") {
			t.Fatal("closed circuit must allow every dispatch")
		}
	}

	// A failure observed after the cooldown lapsed while nothing probed
	// (stale open state) re-opens rather than restarting the count.
	b.failure("q")
	b.failure("q")
	b.failure("q") // open
	clk = clk.Add(2 * time.Minute)
	if !b.failure("q") {
		t.Fatal("failure on a stale-open circuit must re-open it")
	}
	if b.allow("q") {
		t.Fatal("re-opened circuit must fail fast")
	}

	// Peers are independent.
	if !b.allow("r") {
		t.Fatal("unrelated peer affected by another peer's circuit")
	}
}

// workNode builds a Node whose peer list is [self, the given URLs...]
// without starting the prober: liveness only changes when a test
// reports failures. Self is a dummy address that is never dialed.
func workNode(t *testing.T, cfg Config, peers ...string) *Node {
	t.Helper()
	cfg.Self = "http://127.0.0.1:9"
	cfg.Peers = append([]string{cfg.Self}, peers...)
	if cfg.Probe == (ProbeConfig{}) {
		cfg.Probe = staticProbe()
	}
	cfg.Logf = t.Logf
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRemoteSolveRetriesThenSucceeds(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerURL := "http://" + l.Addr().String()
	var attempts atomic.Int32
	var deadlineMs, forwarded atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		deadlineMs.Store(r.Header.Get(service.DeadlineHeader))
		forwarded.Store(r.Header.Get(ForwardedHeader))
		var spec service.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		json.NewEncoder(w).Encode(service.JobView{
			ID: "peer-1", Status: service.StatusDone,
			Result: &service.JobResult{Kind: service.KindSelect, Selection: &service.SelectionResult{
				Status: "optimal", Gain: spec.RequiredGain, Area: 11,
			}},
		})
	})
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: mux}}
	ts.Start()
	defer ts.Close()

	n := workNode(t, Config{
		PointRetries:    2,
		PointBackoff:    time.Millisecond,
		PointBackoffCap: 4 * time.Millisecond,
	}, peerURL)
	res, retries, err := n.RemoteSolve(context.Background(), n.names[peerURL], clusterSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Errorf("retries = %d, want 1 (first attempt 502)", retries)
	}
	if res == nil || res.Selection == nil || res.Selection.Gain != 40 {
		t.Fatalf("result: %+v", res)
	}

	// The dispatch stamps its attempt budget as the propagated caller
	// deadline, and marks itself forwarded so the peer handles the point
	// locally instead of ring-bouncing it.
	dl, _ := deadlineMs.Load().(string)
	ms, err := strconv.ParseInt(dl, 10, 64)
	if err != nil || ms <= 0 || time.Duration(ms)*time.Millisecond > n.cfg.PointTimeout {
		t.Errorf("propagated deadline header %q not within (0, %v]", dl, n.cfg.PointTimeout)
	}
	if fw, _ := forwarded.Load().(string); fw == "" {
		t.Error("point dispatch missing the forwarded marker")
	}

	if got := n.metrics.remoteDispatches.Load(); got != 2 {
		t.Errorf("dispatches = %d, want 2", got)
	}
	if got := n.metrics.remoteDispatchFailures.Load(); got != 1 {
		t.Errorf("dispatch failures = %d, want 1", got)
	}
	if n.breaker.open(peerURL) {
		t.Error("single failure followed by success must leave the circuit closed")
	}
}

func TestRemoteSolvePollsQueuedJob(t *testing.T) {
	// A peer that answers the submit with a queued view must be polled
	// to completion within the same attempt.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerURL := "http://" + l.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: "peer-7", Status: service.StatusQueued})
	})
	mux.HandleFunc("GET /v1/jobs/peer-7", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobView{
			ID: "peer-7", Status: service.StatusDone,
			Result: &service.JobResult{Kind: service.KindSelect, Selection: &service.SelectionResult{
				Status: "optimal", Gain: 60,
			}},
		})
	})
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: mux}}
	ts.Start()
	defer ts.Close()

	n := workNode(t, Config{}, peerURL)
	res, retries, err := n.RemoteSolve(context.Background(), n.names[peerURL], clusterSpec(60))
	if err != nil || retries != 0 || res == nil || res.Selection == nil {
		t.Fatalf("res=%+v retries=%d err=%v", res, retries, err)
	}
}

func TestRemoteSolveFaultInjectionOpensBreaker(t *testing.T) {
	inj, err := faults.Parse("seed=3,remote.point.5xx=1")
	if err != nil {
		t.Fatal(err)
	}
	peerURL := "http://127.0.0.1:10" // never dialed: the fault fires first
	n := workNode(t, Config{
		Faults:          inj,
		PointRetries:    2,
		PointBackoff:    time.Millisecond,
		PointBackoffCap: 2 * time.Millisecond,
		BreakerFailures: 3,
	}, peerURL)

	res, retries, err := n.RemoteSolve(context.Background(), n.names[peerURL], clusterSpec(70))
	if err == nil || res != nil {
		t.Fatalf("always-5xx dispatch succeeded: %+v", res)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want the full budget of 2", retries)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not surface the attempt count: %v", err)
	}
	// Three consecutive failures: the work circuit is open and the
	// prober heard about every one of them.
	if !n.breaker.open(peerURL) {
		t.Error("breaker still closed after exhausting the failure threshold")
	}
	if got := n.metrics.breakerOpens.Load(); got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}
	if got := n.metrics.remoteDispatchFailures.Load(); got != 3 {
		t.Errorf("dispatch failures = %d, want 3", got)
	}
}

func TestRemoteSolveUnknownPeer(t *testing.T) {
	n := workNode(t, Config{}, "http://127.0.0.1:11")
	if _, _, err := n.RemoteSolve(context.Background(), "no-such-node", clusterSpec(1)); err == nil {
		t.Fatal("dispatch to an unknown peer name must fail")
	}
}

func TestRoutePointSkipsSelfDeadAndOpenCircuits(t *testing.T) {
	peers := []string{"http://127.0.0.1:21", "http://127.0.0.1:22"}
	n := workNode(t, Config{
		Probe: ProbeConfig{Interval: time.Hour, FailAfter: 1},
	}, peers...)

	// Find keys by their failover shape: one whose preference order
	// starts at self, and one with both remote peers ahead of self.
	var selfFirst, remotesFirst string
	for i := 0; i < 10000 && (selfFirst == "" || remotesFirst == ""); i++ {
		key := fmt.Sprintf("key-%d", i)
		order := n.ring.Order(key)
		switch {
		case order[0] == n.self:
			selfFirst = key
		case order[0] != n.self && order[1] != n.self:
			remotesFirst = key
		}
	}
	if selfFirst == "" || remotesFirst == "" {
		t.Fatal("no keys with the needed ring orders in 10000 tries")
	}

	if peer, ok := n.RoutePoint(selfFirst); ok {
		t.Fatalf("self-owned key routed remotely to %q", peer)
	}
	order := n.ring.Order(remotesFirst)
	if peer, ok := n.RoutePoint(remotesFirst); !ok || peer != n.names[order[0]] {
		t.Fatalf("RoutePoint = %q,%v, want first live remote %q", peer, ok, n.names[order[0]])
	}

	// Open the preferred peer's work circuit: routing falls to the next.
	for i := 0; i < n.cfg.BreakerFailures; i++ {
		n.breaker.failure(order[0])
	}
	if peer, ok := n.RoutePoint(remotesFirst); !ok || peer != n.names[order[1]] {
		t.Fatalf("RoutePoint with open circuit = %q,%v, want %q", peer, ok, n.names[order[1]])
	}

	// Kill the fallback too (FailAfter 1): self is next in order, so the
	// point must run locally.
	n.prober.ReportFailure(order[1], fmt.Errorf("boom"))
	if peer, ok := n.RoutePoint(remotesFirst); ok {
		t.Fatalf("key with no usable remote routed to %q", peer)
	}
}
