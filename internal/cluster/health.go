package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"partita/internal/faults"
)

// ProbeConfig tunes peer health detection. Zero fields take the
// documented defaults.
type ProbeConfig struct {
	// Interval between probes of each peer (default 2s).
	Interval time.Duration
	// Timeout of one probe request (default 1s).
	Timeout time.Duration
	// FailAfter is how many consecutive failures — probe or forwarding
	// — mark an alive peer dead (default 3).
	FailAfter int
	// PassAfter is how many consecutive probe successes bring a dead
	// peer back (default 2: one stray 200 from a flapping peer does not
	// re-route traffic onto it).
	PassAfter int
	// Path is the endpoint probed on each peer (default /healthz).
	Path string
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.PassAfter <= 0 {
		c.PassAfter = 2
	}
	if c.Path == "" {
		c.Path = "/healthz"
	}
	return c
}

// PeerStatus is one peer's health snapshot for /v1/cluster/ring and
// metrics.
type PeerStatus struct {
	Peer      string    `json:"peer"`
	Name      string    `json:"name"`
	Alive     bool      `json:"alive"`
	Fails     int       `json:"consecutiveFails,omitempty"`
	LastError string    `json:"lastError,omitempty"`
	LastProbe time.Time `json:"lastProbe,omitempty"`
}

// peerState is the mutable health record for one remote peer.
type peerState struct {
	alive     bool
	fails     int // consecutive failures while alive
	passes    int // consecutive successes while dead
	lastErr   string
	lastProbe time.Time
}

// Prober tracks remote peer liveness: a loop per peer hits its health
// endpoint, and the forwarding path reports failures directly so a dead
// owner is suspected at first contact, not only at the next probe tick.
// Peers start alive — a booting cluster must not treat a peer as dead
// just because nothing has been proven yet; the first FailAfter
// failures are the proof.
type Prober struct {
	cfg     ProbeConfig
	peers   []string // remote peers only (self excluded)
	hc      *http.Client
	inj     *faults.Injector
	logf    func(string, ...any)
	metrics *Metrics

	mu sync.Mutex
	st map[string]*peerState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newProber builds the prober for the given remote peers. Call Start to
// launch the probe loops.
func newProber(peers []string, cfg ProbeConfig, inj *faults.Injector, m *Metrics, logf func(string, ...any)) *Prober {
	cfg = cfg.withDefaults()
	p := &Prober{
		cfg:     cfg,
		peers:   append([]string(nil), peers...),
		hc:      &http.Client{Timeout: cfg.Timeout},
		inj:     inj,
		logf:    logf,
		metrics: m,
		st:      map[string]*peerState{},
		stop:    make(chan struct{}),
	}
	for _, peer := range p.peers {
		p.st[peer] = &peerState{alive: true}
	}
	return p
}

// Start launches one probe loop per remote peer.
func (p *Prober) Start() {
	for _, peer := range p.peers {
		p.wg.Add(1)
		go p.loop(peer)
	}
}

// Stop halts the probe loops and waits for them.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

func (p *Prober) loop(peer string) {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probe(peer)
		}
	}
}

// probe performs one health check and feeds the result into the
// threshold state machine.
func (p *Prober) probe(peer string) {
	err := p.probeOnce(peer)
	now := time.Now()
	if err != nil {
		p.metrics.probeFailures.Add(1)
		p.observeFailure(peer, now, err.Error())
		return
	}
	p.mu.Lock()
	st := p.st[peer]
	st.lastProbe = now
	st.fails = 0
	st.lastErr = ""
	if !st.alive {
		st.passes++
		if st.passes >= p.cfg.PassAfter {
			st.alive = true
			st.passes = 0
			p.logf("cluster: peer %s recovered, rejoining ring", peer)
		}
	}
	p.mu.Unlock()
}

func (p *Prober) probeOnce(peer string) error {
	if p.inj.Fire(faults.PeerPartition) {
		return fmt.Errorf("faults: injected %s", faults.PeerPartition)
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+p.cfg.Path, nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: HTTP %d", peer+p.cfg.Path, resp.StatusCode)
	}
	return nil
}

// ReportFailure feeds a forwarding failure into the same threshold
// machinery as a failed probe: FailAfter consecutive failed contacts of
// any kind take the peer out of the ring without waiting for probes.
func (p *Prober) ReportFailure(peer string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	p.observeFailure(peer, time.Now(), msg)
}

func (p *Prober) observeFailure(peer string, now time.Time, msg string) {
	p.mu.Lock()
	st, ok := p.st[peer]
	if !ok {
		p.mu.Unlock()
		return
	}
	st.lastProbe = now
	st.lastErr = msg
	st.passes = 0
	if st.alive {
		st.fails++
		if st.fails >= p.cfg.FailAfter {
			st.alive = false
			st.fails = 0
			p.mu.Unlock()
			p.logf("cluster: peer %s marked dead (%s); its key range fails over to the ring successor", peer, msg)
			return
		}
	}
	p.mu.Unlock()
}

// Alive reports whether the peer is currently in the ring. Unknown
// peers (including self, which the prober never tracks) report true:
// the caller decides what self means.
func (p *Prober) Alive(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.st[peer]
	return !ok || st.alive
}

// Snapshot returns every tracked peer's status, sorted by peer.
func (p *Prober) Snapshot() []PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStatus, 0, len(p.peers))
	for _, peer := range p.peers {
		st := p.st[peer]
		out = append(out, PeerStatus{
			Peer:      peer,
			Alive:     st.alive,
			Fails:     st.fails,
			LastError: st.lastErr,
			LastProbe: st.lastProbe,
		})
	}
	return out
}
