package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"partita/internal/faults"
)

// flakyPeer is a health endpoint whose status is flipped by tests.
type flakyPeer struct {
	ts   *httptest.Server
	sick atomic.Bool
}

func newFlakyPeer(t *testing.T) *flakyPeer {
	t.Helper()
	p := &flakyPeer{}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p.sick.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func testProber(t *testing.T, peers []string, inj *faults.Injector) *Prober {
	t.Helper()
	return newProber(peers, ProbeConfig{
		Interval:  time.Hour, // tests drive probes by hand
		Timeout:   2 * time.Second,
		FailAfter: 2,
		PassAfter: 2,
	}, inj, &Metrics{}, t.Logf)
}

func TestProberFailAndRecoverThresholds(t *testing.T) {
	peer := newFlakyPeer(t)
	p := testProber(t, []string{peer.ts.URL}, nil)

	if !p.Alive(peer.ts.URL) {
		t.Fatal("peers must start alive")
	}
	peer.sick.Store(true)
	p.probe(peer.ts.URL)
	if !p.Alive(peer.ts.URL) {
		t.Fatal("one failure below FailAfter already marked the peer dead")
	}
	p.probe(peer.ts.URL)
	if p.Alive(peer.ts.URL) {
		t.Fatal("FailAfter consecutive failures did not mark the peer dead")
	}

	peer.sick.Store(false)
	p.probe(peer.ts.URL)
	if p.Alive(peer.ts.URL) {
		t.Fatal("one success below PassAfter already revived the peer")
	}
	p.probe(peer.ts.URL)
	if !p.Alive(peer.ts.URL) {
		t.Fatal("PassAfter consecutive successes did not revive the peer")
	}
}

// A flapping peer — never FailAfter failures in a row — must stay in
// the ring: consecutive counts reset on every success.
func TestProberFlappingPeerStaysAlive(t *testing.T) {
	peer := newFlakyPeer(t)
	p := testProber(t, []string{peer.ts.URL}, nil)
	for i := 0; i < 6; i++ {
		peer.sick.Store(i%2 == 0)
		p.probe(peer.ts.URL)
		if !p.Alive(peer.ts.URL) {
			t.Fatalf("flapping peer marked dead after probe %d", i)
		}
	}
}

// Forwarding failures feed the same thresholds as probes, so a dead
// owner is evicted at first contact instead of waiting for probe ticks.
func TestReportFailureEvictsWithoutProbes(t *testing.T) {
	peer := newFlakyPeer(t)
	p := testProber(t, []string{peer.ts.URL}, nil)
	p.ReportFailure(peer.ts.URL, errors.New("connection refused"))
	if !p.Alive(peer.ts.URL) {
		t.Fatal("single reported failure below FailAfter marked the peer dead")
	}
	p.ReportFailure(peer.ts.URL, errors.New("connection refused"))
	if p.Alive(peer.ts.URL) {
		t.Fatal("FailAfter reported failures did not mark the peer dead")
	}
}

func TestProbeDeadEndpointFails(t *testing.T) {
	peer := newFlakyPeer(t)
	url := peer.ts.URL
	peer.ts.Close()
	p := testProber(t, []string{url}, nil)
	p.probe(url)
	p.probe(url)
	if p.Alive(url) {
		t.Fatal("unreachable peer still alive after FailAfter probes")
	}
	st := p.Snapshot()
	if len(st) != 1 || st[0].Alive || st[0].LastError == "" {
		t.Fatalf("snapshot = %+v, want one dead peer with an error", st)
	}
}

// peer.partition makes probes fail even against a healthy peer — the
// chaos harness uses it to simulate a network partition without
// touching the peer process.
func TestPartitionFaultFailsHealthyPeerProbes(t *testing.T) {
	peer := newFlakyPeer(t)
	inj, err := faults.Parse("seed=7,peer.partition=1")
	if err != nil {
		t.Fatal(err)
	}
	p := testProber(t, []string{peer.ts.URL}, inj)
	m := p.metrics
	p.probe(peer.ts.URL)
	p.probe(peer.ts.URL)
	if p.Alive(peer.ts.URL) {
		t.Fatal("partitioned peer still alive after FailAfter probes")
	}
	if got := m.probeFailures.Load(); got != 2 {
		t.Fatalf("probeFailures = %d, want 2", got)
	}
}

func TestAliveUnknownPeerDefaultsTrue(t *testing.T) {
	p := testProber(t, nil, nil)
	if !p.Alive("http://never-configured:1") {
		t.Fatal("unknown peer reported dead; callers own the self case")
	}
}

func TestProberStartStop(t *testing.T) {
	peer := newFlakyPeer(t)
	p := newProber([]string{peer.ts.URL}, ProbeConfig{
		Interval: 5 * time.Millisecond, FailAfter: 2, PassAfter: 2,
	}, nil, &Metrics{}, t.Logf)
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := p.Snapshot(); len(st) == 1 && !st[0].LastProbe.IsZero() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if st := p.Snapshot(); st[0].LastProbe.IsZero() {
		t.Fatal("probe loop never probed the peer")
	}
}
