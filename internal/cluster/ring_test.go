package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return keys
}

func TestNewRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty peer name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// Every node must compute the identical ring regardless of the order
// its operator listed the peers in — otherwise two nodes could disagree
// about ownership forever.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	peers := testPeers(5)
	reversed := make([]string, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	a, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(reversed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(500) {
		oa, _ := a.Owner(key, nil)
		ob, _ := b.Owner(key, nil)
		if oa != ob {
			t.Fatalf("key %s: owner %s vs %s depending on peer order", key, oa, ob)
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := testPeers(3)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(9000)
	for _, key := range keys {
		owner, ok := r.Owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		counts[owner]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of keys; want a roughly even split (%v)", p, 100*share, counts)
		}
	}
}

// Killing one peer must move exactly that peer's keys — each to the
// next live peer in that key's ring order — and leave every other
// key's owner untouched. This is the failover invariant the forwarding
// path relies on.
func TestRingFailoverMovesOnlyTheDeadOwnersKeys(t *testing.T) {
	peers := testPeers(4)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := peers[2]
	alive := func(p string) bool { return p != dead }
	for _, key := range testKeys(2000) {
		before, _ := r.Owner(key, nil)
		after, ok := r.Owner(key, alive)
		if !ok {
			t.Fatalf("no live owner for %s", key)
		}
		if before != dead {
			if after != before {
				t.Fatalf("key %s moved %s → %s though its owner never died", key, before, after)
			}
			continue
		}
		order := r.Order(key)
		if order[0] != dead {
			t.Fatalf("key %s: Order()[0] = %s, want static owner %s", key, order[0], dead)
		}
		if after != order[1] {
			t.Fatalf("key %s failed over to %s, want ring successor %s", key, after, order[1])
		}
	}
}

func TestRingOrderListsEveryPeerOnce(t *testing.T) {
	peers := testPeers(5)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(200) {
		order := r.Order(key)
		if len(order) != len(peers) {
			t.Fatalf("key %s: order has %d peers, want %d", key, len(order), len(peers))
		}
		seen := map[string]bool{}
		for _, p := range order {
			if seen[p] {
				t.Fatalf("key %s: %s appears twice in order %v", key, p, order)
			}
			seen[p] = true
		}
		static, _ := r.Owner(key, nil)
		if order[0] != static {
			t.Fatalf("key %s: order starts at %s, want static owner %s", key, order[0], static)
		}
	}
}

func TestRingOwnerNoneAlive(t *testing.T) {
	r, err := NewRing(testPeers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := r.Owner("k", func(string) bool { return false }); ok {
		t.Fatalf("Owner = %q with every peer dead, want none", owner)
	}
}
