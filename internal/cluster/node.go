package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"partita/internal/faults"
	"partita/internal/service"
)

// ForwardedHeader marks a request that already crossed one node hop.
// Forwarded requests are always handled locally — even if the receiving
// node disagrees about ownership — so transiently divergent ring views
// can never ping-pong a request between nodes. (Handling locally is
// always safe: jobs are content-addressed and idempotent.)
const ForwardedHeader = "X-Partitad-Forwarded"

// maxSubmitBody mirrors the service's submit body cap.
const maxSubmitBody = 8 << 20

// Config tunes a cluster Node.
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers.
	Self string
	// Peers is the static cluster membership, self included (base URLs,
	// e.g. "http://10.0.0.1:8080").
	Peers []string
	// Replicas is the virtual-node count per peer (default 64).
	Replicas int
	// Probe tunes peer health detection.
	Probe ProbeConfig
	// ForwardTimeout bounds one forwarded submit (default 10s; poll
	// forwards add the long-poll cap on top).
	ForwardTimeout time.Duration
	// PeekTimeout bounds one peer result-cache peek across all peers
	// (default 300ms — a peek must stay far cheaper than a solve).
	PeekTimeout time.Duration
	// PointTimeout bounds one remote batch-point dispatch attempt,
	// submit plus polls (default 10s).
	PointTimeout time.Duration
	// PointRetries is how many times a failed point dispatch is retried
	// against the same peer before the point requeues locally (default
	// 2; negative disables retries).
	PointRetries int
	// PointBackoff is the base delay between point dispatch retries,
	// doubled per attempt with jitter, capped at PointBackoffCap
	// (defaults 100ms and 2s).
	PointBackoff    time.Duration
	PointBackoffCap time.Duration
	// BreakerFailures is how many consecutive dispatch failures open a
	// peer's work circuit (default 3); BreakerCooldown is how long the
	// circuit stays open before a half-open probe (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// Faults is the optional fault injector shared with the service
	// (peer.timeout, peer.5xx, peer.partition).
	Faults *faults.Injector
	// Logf receives routing and membership events (default: discard).
	Logf func(string, ...any)
}

func (c Config) withDefaults() Config {
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.PeekTimeout <= 0 {
		c.PeekTimeout = 300 * time.Millisecond
	}
	if c.PointTimeout <= 0 {
		c.PointTimeout = 10 * time.Second
	}
	if c.PointRetries == 0 {
		c.PointRetries = 2
	} else if c.PointRetries < 0 {
		c.PointRetries = 0
	}
	if c.PointBackoff <= 0 {
		c.PointBackoff = 100 * time.Millisecond
	}
	if c.PointBackoffCap <= 0 {
		c.PointBackoffCap = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one partitad's cluster layer: it owns the ring, the prober,
// and the HTTP surface, wrapping a service.Server core. Build with New,
// wire the hooks into the service config, Attach the built server, then
// Start.
type Node struct {
	cfg    Config
	self   string
	names  map[string]string // peer URL → short node name
	urls   map[string]string // short node name → peer URL
	ring    *Ring
	prober  *Prober
	breaker *breaker
	hc      *http.Client
	inj     *faults.Injector

	metrics *Metrics
	mux     *http.ServeMux
	srv     *service.Server
}

// New validates the peer configuration and builds the Node. The
// service server does not exist yet at this point — the intended order
// is: node := New(...); then service.Open with RemoteLookup/OwnerOf
// pointing at the node; then node.Attach(srv).
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, got %d", len(cfg.Peers))
	}
	peers := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		peers[i] = strings.TrimRight(strings.TrimSpace(p), "/")
		if !strings.HasPrefix(peers[i], "http://") && !strings.HasPrefix(peers[i], "https://") {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
		}
	}
	self := strings.TrimRight(strings.TrimSpace(cfg.Self), "/")
	ring, err := NewRing(peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		self:    self,
		names:   map[string]string{},
		urls:    map[string]string{},
		ring:    ring,
		breaker: newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown),
		hc:      &http.Client{},
		inj:     cfg.Faults,
		metrics: &Metrics{},
	}
	found := false
	for _, p := range peers {
		name := sanitizeName(p)
		if prev, dup := n.urls[name]; dup {
			return nil, fmt.Errorf("cluster: peers %q and %q share node name %q", prev, p, name)
		}
		n.names[p] = name
		n.urls[name] = p
		if p == self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: -self %q is not in the peer list %v", cfg.Self, peers)
	}
	var remotes []string
	for _, p := range ring.Peers() {
		if p != self {
			remotes = append(remotes, p)
		}
	}
	n.prober = newProber(remotes, cfg.Probe, cfg.Faults, n.metrics, cfg.Logf)

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	n.mux.HandleFunc("GET /v1/jobs", n.handleList)
	n.mux.HandleFunc("GET /v1/jobs/{id}", n.handleGet)
	n.mux.HandleFunc("GET /v1/cluster/cache/{key}", n.handleCachePeek)
	n.mux.HandleFunc("GET /v1/cluster/owner/{key}", n.handleOwner)
	n.mux.HandleFunc("GET /v1/cluster/ring", n.handleRing)
	n.mux.HandleFunc("GET /metrics", n.handleMetrics)
	n.mux.HandleFunc("/", n.local) // /healthz, /readyz, everything else
	return n, nil
}

// sanitizeName derives the short node name used in job-ID prefixes and
// metric labels from a peer base URL: scheme stripped, every
// non-alphanumeric byte mapped to '-' ("http://127.0.0.1:7001" →
// "127-0-0-1-7001").
func sanitizeName(peer string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(peer, "https://"), "http://")
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			if n := b.Len(); n > 0 && b.String()[n-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// NodeName returns this node's short name — the service's
// Config.NodeName, so job IDs self-describe which node accepted them.
func (n *Node) NodeName() string { return n.names[n.self] }

// Attach wires the built service core into the node. Must be called
// before the handler serves traffic.
func (n *Node) Attach(srv *service.Server) { n.srv = srv }

// Start launches the health probe loops.
func (n *Node) Start() { n.prober.Start() }

// Handler returns the cluster HTTP surface (a superset of the service
// surface).
func (n *Node) Handler() http.Handler { return n.mux }

// Leave announces ring departure ahead of a drain: /readyz flips to
// "leaving-ring" so peers and balancers steer away while in-flight work
// finishes.
func (n *Node) Leave() { n.srv.BeginLeave() }

// Stop halts the probe loops.
func (n *Node) Stop() { n.prober.Stop() }

// alive reports ring membership as seen from this node. Self is always
// a member of its own ring: a node with a sick view of the network must
// still serve what it can.
func (n *Node) alive(peer string) bool {
	if peer == n.self {
		return true
	}
	return n.prober.Alive(peer)
}

// OwnerOf is the service.Config.OwnerOf hook: it stamps accepted jobs
// with this node's identity and the key's static ring owner. Accepting
// a key whose static owner is another peer is, by construction, a
// failover accept (the owner was unreachable, or a peer explicitly
// handed the job to us).
func (n *Node) OwnerOf(key string) *service.Ownership {
	static, _ := n.ring.Owner(key, nil)
	o := &service.Ownership{
		Node:     n.names[n.self],
		Owner:    n.names[static],
		Failover: static != n.self,
	}
	if o.Failover {
		n.metrics.failoverAccepts.Add(1)
	}
	return o
}

// RemoteLookup is the service.Config.RemoteLookup hook: before solving
// a local cache miss, peek every live peer's result cache in parallel
// and serve the first hit. The whole peek is bounded by PeekTimeout so
// a slow peer can only ever delay a solve, never block it.
func (n *Node) RemoteLookup(key string) (*service.JobResult, bool) {
	var peers []string
	for _, p := range n.ring.Order(key) {
		if p != n.self && n.alive(p) {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeekTimeout)
	defer cancel()
	ch := make(chan *service.JobResult, len(peers))
	for _, peer := range peers {
		go func(peer string) { ch <- n.peekPeer(ctx, peer, key) }(peer)
	}
	for range peers {
		if res := <-ch; res != nil {
			n.metrics.peerCacheHits.Add(1)
			return res, true
		}
	}
	n.metrics.peerCacheMisses.Add(1)
	return nil, false
}

// peekPeer asks one peer's cache for the key; nil on miss or error.
func (n *Node) peekPeer(ctx context.Context, peer, key string) *service.JobResult {
	resp, err := n.peerDo(ctx, peer, http.MethodGet, "/v1/cluster/cache/"+url.PathEscape(key), nil, nil)
	if err != nil {
		n.prober.ReportFailure(peer, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var res service.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil
	}
	return &res
}

// peerDo performs one HTTP call to a peer, with the peer fault points
// threaded through: peer.partition fails every call, peer.timeout
// stalls until the context (or the configured delay) expires, peer.5xx
// substitutes a 502. extra headers, when non-nil, are set on the
// request (e.g. the propagated caller deadline).
func (n *Node) peerDo(ctx context.Context, peer, method, pathAndQuery string, body []byte, extra map[string]string) (*http.Response, error) {
	if n.inj.Fire(faults.PeerPartition) {
		return nil, fmt.Errorf("cluster: %s unreachable: injected %s", peer, faults.PeerPartition)
	}
	if n.inj.Fire(faults.PeerTimeout) {
		delay := n.inj.Duration(faults.PeerTimeoutDelay, time.Second)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("cluster: %s: injected %s", peer, faults.PeerTimeout)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, n.names[n.self])
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range extra {
		req.Header.Set(k, v)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if n.inj.Fire(faults.Peer5xx) {
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: %s: injected %s (HTTP 502)", peer, faults.Peer5xx)
	}
	return resp, nil
}

// local delegates to the wrapped service core.
func (n *Node) local(w http.ResponseWriter, r *http.Request) {
	n.srv.Handler().ServeHTTP(w, r)
}

// handleSubmit routes one submission: forwarded (or unparseable)
// requests are handled locally; otherwise the job's content address
// picks the owner, dead owners are skipped (that is the failover), and
// a forward that fails at the wire walks down the ring order until a
// node accepts — this node included, as the final fallback.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ForwardedHeader) != "" {
		n.local(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read body: %w", err))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	var spec service.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		n.local(w, r) // the core emits the canonical 400
		return
	}
	key, err := service.ResultKey(spec)
	if err != nil {
		n.local(w, r)
		return
	}
	for _, peer := range n.ring.Order(key) {
		if peer == n.self {
			break // this node is the first live choice: accept locally
		}
		if !n.alive(peer) {
			continue // dead owner: its range has failed over down-ring
		}
		n.metrics.forwardsSubmit.Add(1)
		// A forwarded solve inherits the submitter's remaining budget: the
		// caller's deadline header travels with the request so the target
		// node clamps to it instead of running its own full default.
		var extra map[string]string
		if d := r.Header.Get(service.DeadlineHeader); d != "" {
			extra = map[string]string{service.DeadlineHeader: d}
		}
		ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout)
		resp, err := n.peerDo(ctx, peer, http.MethodPost, "/v1/jobs", body, extra)
		if err == nil && resp.StatusCode < 500 {
			copyResponse(w, resp)
			cancel()
			return
		}
		cancel()
		n.forwardFailed(peer, resp, err)
	}
	n.local(w, r)
}

// forwardFailed records one failed forward and feeds the peer's health
// state so repeated failures evict it from the ring quickly.
func (n *Node) forwardFailed(peer string, resp *http.Response, err error) {
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		err = fmt.Errorf("cluster: %s answered HTTP %d", peer, resp.StatusCode)
	}
	n.metrics.forwardFailures.Add(1)
	n.prober.ReportFailure(peer, err)
	n.cfg.Logf("cluster: forward to %s failed (%v), trying next in ring order", peer, err)
}

// handleGet routes one poll. Local jobs are served directly; cluster
// job IDs carry their accepting node's name, so everything else is
// forwarded by prefix, with a locate sweep over live peers as the
// fallback (covers jobs that moved via failover resubmission).
func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Header.Get(ForwardedHeader) != "" {
		n.local(w, r)
		return
	}
	if _, ok := n.srv.Job(id); ok {
		n.local(w, r)
		return
	}
	pathQ := "/v1/jobs/" + url.PathEscape(id)
	if q := r.URL.RawQuery; q != "" {
		pathQ += "?" + q
	}
	if peer, ok := n.peerForID(id); ok && peer != n.self && n.alive(peer) {
		if n.forwardPoll(w, r, peer, pathQ) {
			return
		}
	}
	// Locate sweep: a short, no-wait existence check per live peer, then
	// the full request (long-poll included) to whichever node has it.
	for _, peer := range n.ring.Peers() {
		if peer == n.self || !n.alive(peer) {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout)
		resp, err := n.peerDo(ctx, peer, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil)
		found := false
		if err == nil {
			found = resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if found && n.forwardPoll(w, r, peer, pathQ) {
			return
		}
	}
	n.local(w, r) // canonical 404
}

// forwardPoll forwards one poll (including its long-poll wait) to peer;
// false means the caller should keep looking.
func (n *Node) forwardPoll(w http.ResponseWriter, r *http.Request, peer, pathQ string) bool {
	// The forward must outlive the service's 30s long-poll cap.
	ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout+35*time.Second)
	defer cancel()
	resp, err := n.peerDo(ctx, peer, http.MethodGet, pathQ, nil, nil)
	if err != nil {
		n.forwardFailed(peer, nil, err)
		return false
	}
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return false
	}
	n.metrics.forwardsPoll.Add(1)
	copyResponse(w, resp)
	return true
}

// handleList merges the local job table with every live peer's.
func (n *Node) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ForwardedHeader) != "" {
		n.local(w, r)
		return
	}
	var views []service.JobView
	collect := func(raw []byte) {
		var out struct {
			Jobs []service.JobView `json:"jobs"`
		}
		if json.Unmarshal(raw, &out) == nil {
			views = append(views, out.Jobs...)
		}
	}
	rec := newRecorder()
	n.srv.Handler().ServeHTTP(rec, r)
	collect(rec.body.Bytes())
	for _, peer := range n.ring.Peers() {
		if peer == n.self || !n.alive(peer) {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout)
		resp, err := n.peerDo(ctx, peer, http.MethodGet, "/v1/jobs", nil, nil)
		if err == nil && resp.StatusCode == http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			collect(raw)
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleCachePeek answers a peer's cache probe from the local result
// cache: 200 with the result, or 404.
func (n *Node) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := n.srv.CachedResult(key); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("cluster: key %q not cached here", key))
}

// handleOwner reports routing for one key: who owns it now (among live
// peers), who owns it statically, and the failover order.
func (n *Node) handleOwner(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	static, _ := n.ring.Owner(key, nil)
	owner, ok := n.ring.Owner(key, n.alive)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no live owner for %q", key))
		return
	}
	order := n.ring.Order(key)
	names := make([]string, len(order))
	for i, p := range order {
		names[i] = n.names[p]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":         key,
		"owner":       n.names[owner],
		"ownerUrl":    owner,
		"staticOwner": n.names[static],
		"failover":    owner != static,
		"order":       names,
	})
}

// handleRing reports the node's view of the cluster: every peer, its
// health, and this node's identity.
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	statuses := n.statuses()
	alive := 0
	for _, s := range statuses {
		if s.Alive {
			alive++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"self":       n.names[n.self],
		"selfUrl":    n.self,
		"peers":      statuses,
		"peersAlive": alive, // remote peers only; self is implicit
	})
}

// statuses snapshots remote peer health with names attached.
func (n *Node) statuses() []PeerStatus {
	statuses := n.prober.Snapshot()
	for i := range statuses {
		statuses[i].Name = n.names[statuses[i].Peer]
	}
	return statuses
}

// handleMetrics renders the core service metrics followed by the
// cluster section.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.srv.Handler().ServeHTTP(w, r)
	n.metrics.write(w, n.statuses())
}

// peerForID maps a node-prefixed job ID back to the peer that issued
// it.
func (n *Node) peerForID(id string) (string, bool) {
	i := strings.LastIndex(id, "-j")
	if i <= 0 {
		return "", false
	}
	peer, ok := n.urls[id[:i]]
	return peer, ok
}

// copyResponse relays a forwarded response to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// recorder captures a delegated handler's body for merging.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder                    { return &recorder{code: http.StatusOK, header: http.Header{}} }
func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
