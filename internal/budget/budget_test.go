package budget

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCheckLiveContext(t *testing.T) {
	if err := Check(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := Check(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}
}

func TestCheckExpiredContext(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Check(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context: got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context should keep the cause: %v", err)
	}
}

func TestCheckCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: got %v", err)
	}
}

func TestIsExhausted(t *testing.T) {
	for _, sentinel := range []error{ErrDeadline, ErrNodeLimit, ErrIterLimit, ErrStepLimit} {
		if !IsExhausted(fmt.Errorf("wrapped: %w", sentinel)) {
			t.Errorf("IsExhausted(%v) = false", sentinel)
		}
	}
	if IsExhausted(errors.New("parse error")) {
		t.Error("IsExhausted(parse error) = true")
	}
	if IsExhausted(nil) {
		t.Error("IsExhausted(nil) = true")
	}
}

func TestUnlimited(t *testing.T) {
	if !(Budget{}).Unlimited() {
		t.Error("zero budget should be unlimited")
	}
	if (Budget{MaxNodes: 1}).Unlimited() {
		t.Error("node-limited budget reported unlimited")
	}
	if !(Budget{Parallelism: 8}).Unlimited() {
		t.Error("parallelism is not a work limit; budget should stay unlimited")
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct {
		parallelism, want int
	}{
		{0, 1}, // zero value: serial, deterministic
		{1, 1},
		{2, 2},
		{8, 8},
	}
	for _, c := range cases {
		if got := (Budget{Parallelism: c.parallelism}).Workers(); got != c.want {
			t.Errorf("Workers(Parallelism=%d) = %d, want %d", c.parallelism, got, c.want)
		}
	}
	if got := (Budget{Parallelism: -1}).Workers(); got < 1 {
		t.Errorf("auto Workers() = %d, want >= 1", got)
	}
}
