// Package budget defines the shared resource-budget vocabulary of the
// Partita pipeline: a Budget value bounds how much work the exact
// solvers may spend, and the typed errors below report which limit was
// exhausted. Wall-clock limits travel as context deadlines; discrete
// limits (branch-and-bound nodes, simplex pivots, simulation steps)
// travel as Budget fields.
//
// The contract every budgeted layer follows:
//
//   - exhausting a budget is not a failure of the input — layers either
//     return their best incumbent so far (anytime results) or degrade to
//     a cheaper heuristic, and the result is marked accordingly;
//   - the returned error (or the recorded stop reason) wraps exactly one
//     of the sentinel errors here, so callers can dispatch with
//     errors.Is regardless of which layer gave up first.
package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime"
)

// Sentinel errors for each budget dimension. Errors returned by budgeted
// layers wrap these; test with errors.Is.
var (
	// ErrDeadline reports that the wall-clock budget (context deadline
	// or cancellation) expired.
	ErrDeadline = errors.New("budget: wall-clock budget exhausted")
	// ErrNodeLimit reports that the branch-and-bound node budget ran out.
	ErrNodeLimit = errors.New("budget: branch-and-bound node budget exhausted")
	// ErrIterLimit reports that a simplex pivot budget ran out.
	ErrIterLimit = errors.New("budget: simplex iteration budget exhausted")
	// ErrStepLimit reports that a simulation step budget ran out.
	ErrStepLimit = errors.New("budget: simulation step budget exhausted")
)

// Budget bounds the discrete work of one solve. The zero value means
// "unlimited" for every dimension; wall-clock limits are expressed
// separately through a context deadline.
type Budget struct {
	// MaxNodes bounds the number of branch-and-bound nodes explored
	// across one Solve call (0 = unlimited).
	MaxNodes int
	// MaxSimplexIter bounds the pivots of each LP relaxation solve
	// (0 = the solver's built-in safety cap).
	MaxSimplexIter int
	// Parallelism sets how many worker goroutines a solve may use.
	// Unlike the fields above it is not a limit on total work but on
	// concurrency:
	//
	//   - 0 and 1 select the serial solver, which explores nodes in a
	//     fixed, reproducible order (the determinism contract golden
	//     tests rely on);
	//   - values >= 2 enable the parallel branch-and-bound driver (and
	//     concurrent sweep points) with exactly that many workers;
	//   - negative values mean "one worker per available CPU"
	//     (runtime.GOMAXPROCS).
	//
	// Parallel solves prove the same status and objective as serial
	// ones, but node counts and anytime incumbent trajectories may
	// differ run to run.
	Parallelism int
}

// Unlimited reports whether the budget imposes no discrete limits.
// Parallelism is a concurrency setting, not a work limit, so it does
// not affect this.
func (b Budget) Unlimited() bool { return b.MaxNodes <= 0 && b.MaxSimplexIter <= 0 }

// Workers resolves the Parallelism knob to a concrete worker count:
// at least 1, exactly Parallelism when >= 2, and GOMAXPROCS for
// negative (auto) values.
func (b Budget) Workers() int {
	switch {
	case b.Parallelism < 0:
		if n := runtime.GOMAXPROCS(0); n > 1 {
			return n
		}
		return 1
	case b.Parallelism <= 1:
		return 1
	default:
		return b.Parallelism
	}
}

// Check maps a context's cancellation state to the budget vocabulary:
// nil while the context is live, and an error wrapping both ErrDeadline
// and the context's own error (context.DeadlineExceeded or
// context.Canceled) once it is done.
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return nil
}

// IsExhausted reports whether err (or anything it wraps) is one of the
// budget sentinels — i.e. the work stopped because a budget ran out, not
// because the input was invalid.
func IsExhausted(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrNodeLimit) ||
		errors.Is(err, ErrIterLimit) || errors.Is(err, ErrStepLimit)
}
