package service

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Error("a should have survived (recently used)")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(4)
	c.Put("x", 1)
	c.Get("x")
	c.Get("x")
	c.Get("missing")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = (%d, %d), want (2, 1)", hits, misses)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Errorf("value = %v, want 10", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (g+i)%24))
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 16 {
		t.Errorf("len = %d exceeds bound 16", c.Len())
	}
}
