package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"partita"
	"partita/internal/budget"
)

// testSource is a small two-kernel program that solves in well under a
// millisecond, keeping the service tests fast.
const testSource = `
xmem int signal[32] = {5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8,
                       5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8};
ymem int taps[4] = {8192, 16384, 8192, 4096};
xmem int filtered[32];
xmem int quantized[32];
int status;

int fir(xmem int in[], ymem int c[], xmem int out[], int n, int k) {
	int i; int j; int acc;
	for (i = 0; i + k <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < k; j = j + 1) { acc = acc + in[i + j] * c[j]; }
		out[i] = acc >> 15;
	}
	return out[0];
}

int quant(xmem int in[], xmem int out[], int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { out[i] = in[i] / 4; }
	return out[0];
}

int process() {
	int a; int b;
	a = fir(signal, taps, filtered, 32, 4);
	b = quant(filtered, quantized, 32);
	status = a + b;
	return status;
}

int main() {
	return process();
}
`

func testCatalog() []*partita.IP {
	return []*partita.IP{
		{ID: "FIR8", Name: "FIR engine", Funcs: []string{"fir"},
			InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
			Latency: 8, Pipelined: true, Area: 5},
		{ID: "QNT", Name: "quantizer", Funcs: []string{"quant"},
			InPorts: 1, OutPorts: 1, InRate: 2, OutRate: 2,
			Latency: 4, Pipelined: true, Area: 2},
	}
}

func selectSpec(rg int64) JobSpec {
	return JobSpec{
		Kind:         KindSelect,
		Source:       testSource,
		Root:         "process",
		Catalog:      testCatalog(),
		RequiredGain: rg,
	}
}

func waitDone(t testing.TB, job *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !job.Done() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish; view: %+v", job.ID, job.View())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestSubmitSelectAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	first, err := s.Submit(selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	v1 := first.View()
	if v1.Status != StatusDone {
		t.Fatalf("first job: %+v", v1)
	}
	if v1.Cached {
		t.Fatal("first job must be a cache miss")
	}
	if !v1.Result.Selection.Solved() {
		t.Fatalf("first selection not solved: %+v", v1.Result.Selection)
	}

	second, err := s.Submit(selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	v2 := second.View()
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("second job should complete instantly from cache: %+v", v2)
	}
	if !reflect.DeepEqual(v1.Result, v2.Result) {
		t.Errorf("cached result differs:\nfirst:  %+v\nsecond: %+v", v1.Result, v2.Result)
	}
	if hits, _ := s.results.Stats(); hits < 1 {
		t.Errorf("result cache hits = %d, want >= 1", hits)
	}

	// A different gain is a different content address.
	third, err := s.Submit(selectSpec(2000))
	if err != nil {
		t.Fatal(err)
	}
	if third.View().Cached {
		t.Error("different requiredGain must not hit the cache")
	}
	waitDone(t, third)
}

func TestTightBudgetReturnsIncumbentNotError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// 3200 needs both IPs and leaves the root LP fractional even after
	// the root cuts (no single IP covers it), so a 1-node budget still
	// exhausts before optimality is proven.
	spec := selectSpec(3200)
	spec.MaxNodes = 1 // deterministic exhaustion on the first node
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := job.View()
	if v.Status != StatusDone {
		t.Fatalf("budget exhaustion must not fail the job: %+v", v)
	}
	sel := v.Result.Selection
	if sel == nil || !sel.Solved() {
		t.Fatalf("expected a usable incumbent, got %+v", sel)
	}
	if sel.Status == "optimal" && sel.Degraded == "" {
		t.Fatalf("one-node budget cannot prove optimality: %+v", sel)
	}
	if sel.Degraded == "" && sel.Gap < 0 {
		// Anytime incumbents carry their gap; -1 (unknown bound) is
		// only acceptable alongside a recorded gap convention.
		t.Logf("gap unknown (no finite bound): %+v", sel)
	}
}

func TestTightDeadlineReturnsDegradedNotError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	spec := selectSpec(1000)
	spec.TimeoutMs = 1
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := job.View()
	if v.Status != StatusDone {
		t.Fatalf("deadline expiry must not fail the job: %+v", v)
	}
	if v.Result.Selection == nil {
		t.Fatalf("no selection in result: %+v", v.Result)
	}
}

func TestAnalyzeAndSweepJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	an, err := s.Submit(JobSpec{Kind: KindAnalyze, Source: testSource, Root: "process", Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, an)
	av := an.View()
	if av.Status != StatusDone || av.Result.Analyze == nil {
		t.Fatalf("analyze: %+v", av)
	}
	if len(av.Result.Analyze.SCalls) == 0 || av.Result.Analyze.MaxReachableGain <= 0 {
		t.Errorf("analyze summary incomplete: %+v", av.Result.Analyze)
	}

	sw, err := s.Submit(JobSpec{Kind: KindSweep, Source: testSource, Root: "process", Catalog: testCatalog(), Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw)
	sv := sw.View()
	if sv.Status != StatusDone || len(sv.Result.Sweep) != 3 {
		t.Fatalf("sweep: %+v", sv)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{}) // no workers needed
	cases := []JobSpec{
		{},                 // no kind
		{Kind: "optimize"}, // unknown kind
		{Kind: KindSelect}, // no program at all
		{Kind: KindSelect, Source: "int main() { return 0; }"},                                // no root/catalog
		{Kind: KindSelect, Workload: "gsm", Source: "x"},                                      // both forms
		{Kind: KindSelect, Workload: "gsm", RequiredGain: -1},                                 // bad gain
		{Kind: KindSweep, Workload: "gsm", Points: maxSweepPoints + 1},                        // too many points
		{Kind: KindSelect, Workload: "nope"},                                                  // unknown workload
		{Kind: KindAnalyze, Workload: "gsm", PerPath: []int64{1}},                             // perPath on non-select
		{Kind: KindSelect, Source: "x", Root: "r", Catalog: testCatalog()[:1], TimeoutMs: -5}, // bad timeout
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1}) // workers never started
	if _, err := s.Submit(selectSpec(100)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(selectSpec(200))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestCoalescingIdenticalInflight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4}) // workers never started
	first, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("identical in-flight submissions should coalesce to one job")
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	job, err := s.Submit(selectSpec(1500))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight job must have completed with a usable result — the
	// drain presents as a deadline, so the solver hands back its best
	// incumbent (or the greedy fallback) instead of erroring.
	v := job.View()
	if v.Status != StatusDone {
		t.Fatalf("drained job did not complete: %+v", v)
	}
	if v.Result == nil || v.Result.Selection == nil || !v.Result.Selection.Solved() {
		t.Fatalf("drained job has no usable selection: %+v", v.Result)
	}
	if _, err := s.Submit(selectSpec(99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

func TestDrainContextPresentsAsDeadline(t *testing.T) {
	drain := make(chan struct{})
	ctx, stop := withDrain(context.Background(), drain)
	defer stop()
	if err := budget.Check(ctx); err != nil {
		t.Fatalf("live drain context should pass budget.Check: %v", err)
	}
	close(drain)
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
	err := budget.Check(ctx)
	if !budget.IsExhausted(err) {
		t.Fatalf("budget.Check = %v, want exhaustion", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("drain must not present as cancellation")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(spec JobSpec) (JobView, int) {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
		}
		return v, resp.StatusCode
	}
	get := func(path string) ([]byte, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b, resp.StatusCode
	}

	// healthz before any work.
	if body, code := get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}

	v, code := submit(selectSpec(1000))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit code = %d", code)
	}

	// Poll to completion.
	deadline := time.Now().Add(30 * time.Second)
	for v.Status != StatusDone && v.Status != StatusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
		body, code := get("/v1/jobs/" + v.ID)
		if code != http.StatusOK {
			t.Fatalf("poll code = %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
	}
	if v.Status != StatusDone || !v.Result.Selection.Solved() {
		t.Fatalf("job: %+v", v)
	}

	// Second identical submission: served from cache with HTTP 200.
	v2, code2 := submit(selectSpec(1000))
	if code2 != http.StatusOK || !v2.Cached || v2.Status != StatusDone {
		t.Fatalf("cached submit = %d %+v", code2, v2)
	}
	if !reflect.DeepEqual(v.Result, v2.Result) {
		t.Error("cached HTTP result differs from the solved one")
	}

	// The hit is visible in /metrics.
	metrics, code := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics code = %d", code)
	}
	mtext := string(metrics)
	for _, want := range []string{
		`partitad_cache_hits_total{cache="result"} 1`,
		`partitad_jobs_submitted_total{kind="select"} 2`,
		`partitad_jobs_completed_total{outcome="optimal"} 1`,
		"partitad_solve_seconds_count 1",
		"partitad_workers 2",
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("metrics missing %q\n%s", want, mtext)
		}
	}

	// Unknown job and malformed specs.
	if _, code := get("/v1/jobs/zzz"); code != http.StatusNotFound {
		t.Errorf("unknown job code = %d", code)
	}
	if _, code := submit(JobSpec{Kind: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("bad spec code = %d", code)
	}

	// Listing includes both tracked jobs.
	body, _ := get("/v1/jobs")
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Errorf("listed %d jobs, want 2", len(list.Jobs))
	}
}

func TestHTTPWorkloadSelectMatchesLibrary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	job, err := s.Submit(JobSpec{Kind: KindSelect, Workload: "gsm", RequiredGain: 10000})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := job.View()
	if v.Status != StatusDone {
		t.Fatalf("job: %+v", v)
	}
	if !v.Result.Selection.Solved() {
		t.Fatalf("GSM selection unsolved: %+v", v.Result.Selection)
	}

	// Direct library run must agree exactly.
	w, err := resolveWorkload("gsm")
	if err != nil {
		t.Fatal(err)
	}
	d, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{DataCount: w.DataCount})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := d.Select(10000)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSelectionResult(sel)
	if !reflect.DeepEqual(v.Result.Selection, want) {
		t.Errorf("service result != library result:\nservice: %+v\nlibrary: %+v", v.Result.Selection, want)
	}
}

func TestJobRetentionEvictsFinished(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxJobs: 3})
	var last *Job
	for i := 0; i < 6; i++ {
		job, err := s.Submit(selectSpec(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		last = job
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 3 {
		t.Errorf("retained %d jobs, want <= 3", n)
	}
	if _, ok := s.Job(last.ID); !ok {
		t.Error("most recent job should still be tracked")
	}
}

func TestProgressObservedOnSelect(t *testing.T) {
	// Submit against the bigger GSM instance so the solver reports at
	// least one incumbent through the job's progress snapshot.
	s := newTestServer(t, Config{Workers: 1})
	job, err := s.Submit(JobSpec{Kind: KindSelect, Workload: "gsm", RequiredGain: 10000})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := job.View()
	if v.Status != StatusDone {
		t.Fatalf("job: %+v", v)
	}
	if v.Progress == nil || v.Progress.Incumbents < 1 {
		t.Fatalf("no solver progress recorded: %+v", v.Progress)
	}
	if v.Progress.IncumbentArea <= 0 {
		t.Errorf("incumbent area = %g", v.Progress.IncumbentArea)
	}
}
