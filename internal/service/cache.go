// Package service implements partitad, the Partita synthesis daemon: an
// HTTP/JSON front end that runs Analyze/Select/Sweep jobs on a bounded
// worker pool with per-job deadlines and node budgets, memoizes results
// in content-addressed caches, streams anytime solver progress to
// polling clients, and exposes Prometheus-style metrics.
//
// The layering mirrors the rest of the repository: this package only
// drives the public partita API (every job could be replayed as a
// library call), so the daemon adds operational behaviour — admission
// control, caching, observability, graceful drain — without forking the
// synthesis semantics.
package service

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe, size-bounded LRU keyed by content hashes
// (see partita.CanonicalHash). It backs both service caches: analyzed
// designs and finished job results.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns an empty cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value for key, marking it most recently used.
// Every call counts as a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the bound is exceeded.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	if c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
