package service

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"partita"
	"partita/internal/apps"
	"partita/internal/journal"
)

// Kind names a job type.
type Kind string

// Job kinds.
const (
	// KindAnalyze parses, lowers, and summarizes the program's IMP
	// database without solving.
	KindAnalyze Kind = "analyze"
	// KindSelect solves one S-instruction selection.
	KindSelect Kind = "select"
	// KindSweep solves the area/gain trade-off curve.
	KindSweep Kind = "sweep"
)

// SpecOptions mirrors the declarative fields of partita.Options.
type SpecOptions struct {
	Optimize     bool  `json:"optimize,omitempty"`
	Problem2     bool  `json:"problem2,omitempty"`
	DefaultTrips int64 `json:"defaultTrips,omitempty"`
}

// JobSpec is one submitted job. Either Workload names a bundled
// application (gsm, jpeg, jpegdec) or Source/Root/Catalog describe the
// program inline; the two forms are mutually exclusive.
type JobSpec struct {
	Kind     Kind   `json:"kind"`
	Workload string `json:"workload,omitempty"`
	// Source is the mini-C program; Root the function whose s-calls are
	// optimized; Catalog the IP library (required with Source).
	Source  string        `json:"source,omitempty"`
	Root    string        `json:"root,omitempty"`
	Catalog []*partita.IP `json:"catalog,omitempty"`
	Options SpecOptions   `json:"options"`
	// RequiredGain is the per-path cycle-gain constraint of a select
	// job; PerPath optionally overrides it per execution path.
	RequiredGain int64   `json:"requiredGain,omitempty"`
	PerPath      []int64 `json:"perPath,omitempty"`
	// Points is the sweep resolution (default 5, capped at 50).
	Points int `json:"points,omitempty"`
	// TimeoutMs bounds the solve wall clock; MaxNodes bounds the
	// branch-and-bound work. On exhaustion the job still completes, with
	// a feasible (anytime) or degraded result.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	MaxNodes  int   `json:"maxNodes,omitempty"`
	// Parallelism asks for that many solver workers inside this job's
	// solve (0 = serial). The server clamps it to its configured
	// MaxParallelism, so a job can never grab more cores than the
	// operator allows on top of the job-level worker pool.
	Parallelism int `json:"parallelism,omitempty"`
	// Mode selects the solver strategy of a select job: "" runs the
	// exact solver alone, ModePortfolio races the capacity-bound
	// witness, greedy, LP-rounding, and the exact solver (plus the
	// seeded previous answer on edits), surfacing the first acceptable
	// answer and per-engine attribution on the result.
	Mode string `json:"mode,omitempty"`
	// Gap is the portfolio acceptability threshold (relative area gap);
	// nil takes the server's configured default, 0 accepts only proven
	// results. Portfolio mode only.
	Gap *float64 `json:"gap,omitempty"`
	// Edits is the interactive edit history folded into this job: each
	// entry is one batch of IP-area / IMP-gain / required-gain changes,
	// applied in order on top of the base program. Jobs created by
	// POST /v1/jobs/{id}/edits carry the parent's history plus the new
	// edit, so the spec stays self-contained and journal replay re-runs
	// it without needing the parent's in-memory state.
	Edits []partita.Delta `json:"edits,omitempty"`
	// ParentKey is the result key of the job this spec was derived from
	// by an edit; the solver warm-starts from the parent's cached
	// selection when it is still available. Part of the content address
	// (a warm seed can change anytime results under a budget).
	ParentKey string `json:"parentKey,omitempty"`

	// inheritDeadline is the remaining budget a forwarded request
	// carried in the DeadlineHeader. Deliberately unexported: it is a
	// transport-level cap on this execution, not part of the problem, so
	// it stays out of the content address (the key must match the
	// original submitter's) and out of the journal (a replayed job
	// re-runs under its own full budget).
	inheritDeadline time.Duration
}

// ModePortfolio is the racing-portfolio solver mode of a select job.
const ModePortfolio = "portfolio"

// EditDelta is one batch of interactive edits on the wire — IP area,
// IMP gain, and required-gain replacements (partita.Delta's JSON form).
type EditDelta = partita.Delta

// maxSweepPoints caps the per-job sweep resolution.
const maxSweepPoints = 50

// Validate checks the structural rules that do not need workload
// resolution.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindAnalyze, KindSelect, KindSweep:
	case "":
		return fmt.Errorf("service: missing job kind (analyze, select, or sweep)")
	default:
		return fmt.Errorf("service: unknown job kind %q", s.Kind)
	}
	if s.Workload != "" {
		if s.Source != "" || len(s.Catalog) > 0 {
			return fmt.Errorf("service: workload and inline source/catalog are mutually exclusive")
		}
	} else {
		if s.Source == "" {
			return fmt.Errorf("service: either workload or source is required")
		}
		if s.Root == "" {
			return fmt.Errorf("service: root is required with source")
		}
		if len(s.Catalog) == 0 {
			return fmt.Errorf("service: catalog is required with source")
		}
	}
	if s.RequiredGain < 0 {
		return fmt.Errorf("service: requiredGain must be >= 0")
	}
	if s.Points < 0 || s.Points > maxSweepPoints {
		return fmt.Errorf("service: points must be in [0, %d]", maxSweepPoints)
	}
	if s.TimeoutMs < 0 {
		return fmt.Errorf("service: timeoutMs must be >= 0")
	}
	if s.MaxNodes < 0 {
		return fmt.Errorf("service: maxNodes must be >= 0")
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("service: parallelism must be >= 0")
	}
	if len(s.PerPath) > 0 && s.Kind != KindSelect {
		return fmt.Errorf("service: perPath applies only to select jobs")
	}
	switch s.Mode {
	case "":
		if s.Gap != nil || len(s.Edits) > 0 || s.ParentKey != "" {
			return fmt.Errorf("service: gap, edits, and parentKey require mode %q", ModePortfolio)
		}
	case ModePortfolio:
		if s.Kind != KindSelect {
			return fmt.Errorf("service: mode %q applies only to select jobs", ModePortfolio)
		}
		if s.Gap != nil && (*s.Gap < 0 || *s.Gap >= 1 || math.IsNaN(*s.Gap)) {
			return fmt.Errorf("service: gap must be in [0, 1)")
		}
		for i, e := range s.Edits {
			if e.Required != nil && *e.Required < 0 {
				return fmt.Errorf("service: edit %d sets negative required gain", i)
			}
			for k, v := range e.PathRequired {
				if k < 0 || v < 0 {
					return fmt.Errorf("service: edit %d has invalid path requirement %d:%d", i, k, v)
				}
			}
			for id, a := range e.IPArea {
				if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
					return fmt.Errorf("service: edit %d sets IP %q area to invalid %g", i, id, a)
				}
			}
			for id, g := range e.IMPGain {
				if g < 0 {
					return fmt.Errorf("service: edit %d sets IMP %q gain to negative %d", i, id, g)
				}
			}
		}
	default:
		return fmt.Errorf("service: unknown mode %q (only %q)", s.Mode, ModePortfolio)
	}
	return nil
}

// resolveWorkload maps a bundled-workload name to its definition.
// Workloads are built once and shared: their pieces are read-only.
var resolveWorkload = func() func(name string) (apps.Workload, error) {
	var mu sync.Mutex
	cache := map[string]apps.Workload{}
	builders := map[string]func() (apps.Workload, error){
		"gsm":     apps.GSMEncoderWorkload,
		"jpeg":    apps.JPEGEncoderWorkload,
		"jpegdec": apps.JPEGDecoderWorkload,
	}
	return func(name string) (apps.Workload, error) {
		mu.Lock()
		defer mu.Unlock()
		if w, ok := cache[name]; ok {
			return w, nil
		}
		build, ok := builders[name]
		if !ok {
			return apps.Workload{}, fmt.Errorf("service: unknown workload %q (have gsm, jpeg, jpegdec)", name)
		}
		w, err := build()
		if err != nil {
			return apps.Workload{}, err
		}
		cache[name] = w
		return w, nil
	}
}()

// resolve expands the spec into Analyze inputs plus the hash tags that
// make non-declarative inputs (bundled DataCount functions) part of the
// content address.
func (s *JobSpec) resolve() (source, root string, cat *partita.Catalog, opt partita.Options, tags []string, err error) {
	opt = partita.Options{
		Optimize:     s.Options.Optimize,
		Problem2:     s.Options.Problem2,
		DefaultTrips: s.Options.DefaultTrips,
	}
	if s.Workload != "" {
		w, werr := resolveWorkload(s.Workload)
		if werr != nil {
			err = werr
			return
		}
		root = w.Root
		if s.Root != "" {
			root = s.Root
		}
		opt.DataCount = w.DataCount
		return w.Source, root, w.Catalog, opt, []string{"workload:" + s.Workload}, nil
	}
	cat, err = partita.NewCatalog(s.Catalog...)
	if err != nil {
		return
	}
	return s.Source, s.Root, cat, opt, nil, nil
}

// designKey is the content address of the analyzed design alone.
func (s *JobSpec) designKey() (string, error) {
	source, root, cat, opt, tags, err := s.resolve()
	if err != nil {
		return "", err
	}
	return partita.CanonicalHash(source, root, cat, opt, tags...), nil
}

// resultKey is the content address of the full job: the design key plus
// every field that can change the answer (kind, gains, sweep
// resolution, and the solve budgets — a budget-limited anytime result
// must not be served to an unlimited request).
func (s *JobSpec) resultKey() (string, error) {
	source, root, cat, opt, tags, err := s.resolve()
	if err != nil {
		return "", err
	}
	per := make([]string, len(s.PerPath))
	for i, v := range s.PerPath {
		per[i] = strconv.FormatInt(v, 10)
	}
	tags = append(tags,
		"kind:"+string(s.Kind),
		"rg:"+strconv.FormatInt(s.RequiredGain, 10),
		"perPath:"+strings.Join(per, ","),
		"points:"+strconv.Itoa(s.Points),
		"timeoutMs:"+strconv.FormatInt(s.TimeoutMs, 10),
		"maxNodes:"+strconv.Itoa(s.MaxNodes),
		// Parallelism cannot change an exhaustive answer, but under a
		// budget the anytime incumbent it reaches can differ, so it is
		// part of the content address.
		"parallelism:"+strconv.Itoa(s.Parallelism),
	)
	if s.Mode != "" {
		gap := "default"
		if s.Gap != nil {
			gap = strconv.FormatFloat(*s.Gap, 'g', -1, 64)
		}
		// json.Marshal sorts map keys, so the edit encoding — and with it
		// the content address — is deterministic.
		edits, jerr := json.Marshal(s.Edits)
		if jerr != nil {
			return "", jerr
		}
		tags = append(tags,
			"mode:"+s.Mode,
			"gap:"+gap,
			"edits:"+string(edits),
			// The warm seed a parent provides cannot change a settled
			// proof, but under a budget the anytime answer it reaches can
			// differ — so the parent is part of the content address.
			"parent:"+s.ParentKey,
		)
	}
	return partita.CanonicalHash(source, root, cat, opt, tags...), nil
}

// Status is a job lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Progress is the anytime snapshot of a running solve, updated on every
// new incumbent.
type Progress struct {
	// IncumbentArea is the best configuration's area so far.
	IncumbentArea float64 `json:"incumbentArea"`
	// Bound is the proven lower bound on the optimal area (-1 when no
	// finite bound is known).
	Bound float64 `json:"bound"`
	// Gap is the relative optimality gap (-1 when unknown).
	Gap float64 `json:"gap"`
	// Nodes counts branch-and-bound nodes explored so far.
	Nodes int `json:"nodes"`
	// Incumbents counts how many strictly improving configurations the
	// solver has reported.
	Incumbents int `json:"incumbents"`
}

// JobResult is the wire form of one finished job; exactly one of the
// payload fields is set, matching Kind.
type JobResult struct {
	Kind      Kind               `json:"kind"`
	Analyze   *AnalyzeResult     `json:"analyze,omitempty"`
	Selection *SelectionResult   `json:"selection,omitempty"`
	Sweep     []SweepPointResult `json:"sweep,omitempty"`
	Batch     *BatchResult       `json:"batch,omitempty"`
}

// Ownership records cluster routing information for one accepted job.
// It is resolved by the Config.OwnerOf hook at acceptance time and is
// immutable afterwards: it describes the routing decision the node
// acted on, not the ring's current state.
type Ownership struct {
	// Node is the node that accepted (and will run) the job.
	Node string `json:"node,omitempty"`
	// Owner is the consistent-hash owner of the job's key among the
	// statically configured peers, dead or alive.
	Owner string `json:"owner,omitempty"`
	// Failover marks a job accepted away from its static owner because
	// that owner was unreachable when the job arrived.
	Failover bool `json:"failover,omitempty"`
}

// Job is one tracked submission.
type Job struct {
	ID   string
	Spec JobSpec
	Key  string

	// owner is the cluster routing record (nil outside cluster mode).
	// Set once before the job is visible to any other goroutine.
	owner *Ownership

	// batch points a KindBatch job back at the Batch it carries through
	// the worker pool (nil for ordinary jobs). Set before the job is
	// visible to any other goroutine.
	batch *Batch

	// doneCh closes when the job reaches a terminal state; long-poll
	// handlers and clients wait on it.
	doneCh chan struct{}

	// deadlineClamped marks a solve whose timeout was shortened to a
	// forwarded caller's inherited deadline. Written by execute and read
	// by runJob on the same worker goroutine; never touched elsewhere.
	deadlineClamped bool

	mu        sync.Mutex
	status    Status
	cached    bool
	recovered bool
	progress  *Progress
	result    *JobResult
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	lastCkpt  time.Time
	// Journal records still live for this job (see compactJournal).
	recSubmit *journal.Record
	recCkpt   *journal.Record
	recFinal  *journal.Record
}

// JobView is the JSON snapshot served by the poll endpoints.
type JobView struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Status Status `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	// Recovered marks a job restored or re-enqueued from the journal
	// after a restart.
	Recovered   bool       `json:"recovered,omitempty"`
	Key         string     `json:"key"`
	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	Progress    *Progress  `json:"progress,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	Error       string     `json:"error,omitempty"`
	// Cluster reports which node accepted the job and who its ring
	// owner was, in cluster mode (absent on single-node daemons).
	Cluster *Ownership `json:"cluster,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Kind:        j.Spec.Kind,
		Status:      j.status,
		Cached:      j.cached,
		Recovered:   j.recovered,
		Key:         j.Key,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Result:      j.result,
	}
	if j.owner != nil {
		o := *j.owner
		v.Cluster = &o
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	return v
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed
}

// Result returns the finished result, or nil.
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = now
	j.mu.Unlock()
}

func (j *Job) complete(res *JobResult, cached bool, now time.Time) {
	j.mu.Lock()
	terminal := j.status == StatusDone || j.status == StatusFailed
	j.status = StatusDone
	j.result = res
	j.cached = cached
	j.finished = now
	j.mu.Unlock()
	if !terminal && j.doneCh != nil {
		close(j.doneCh)
	}
}

func (j *Job) fail(err error, now time.Time) {
	j.mu.Lock()
	terminal := j.status == StatusDone || j.status == StatusFailed
	j.status = StatusFailed
	j.errMsg = err.Error()
	j.finished = now
	j.mu.Unlock()
	if !terminal && j.doneCh != nil {
		close(j.doneCh)
	}
}

// DoneCh closes when the job reaches a terminal state; it never closes
// for jobs that predate long-poll support (nil channel blocks forever,
// so callers should pair it with a timeout).
func (j *Job) DoneCh() <-chan struct{} { return j.doneCh }

// setRecord remembers the job's live journal records for compaction: a
// new checkpoint supersedes the previous one, and a final record
// retires every checkpoint.
func (j *Job) setRecord(typ string, rec journal.Record) {
	j.mu.Lock()
	switch typ {
	case recSubmit:
		j.recSubmit = &rec
	case recCheckpoint:
		j.recCkpt = &rec
	case recDone, recFailed:
		j.recFinal = &rec
		j.recCkpt = nil
	}
	j.mu.Unlock()
}

// liveRecords returns the journal records compaction must keep for this
// job: its submit record, plus either the final state or the latest
// checkpoint, plus — for an unfinished batch — every settled point's
// record, so a crash mid-batch never re-solves completed points (a
// finished batch's done record carries all points, retiring them).
// Running and lease records are never live — an unfinished job re-runs
// from its spec after a crash, and a leased point replays as pending.
func (j *Job) liveRecords() []journal.Record {
	j.mu.Lock()
	if j.recSubmit == nil {
		j.mu.Unlock()
		return nil
	}
	out := []journal.Record{*j.recSubmit}
	final := j.recFinal != nil
	if final {
		out = append(out, *j.recFinal)
	} else if j.recCkpt != nil {
		out = append(out, *j.recCkpt)
	}
	batch := j.batch
	j.mu.Unlock()
	if batch != nil && !final {
		out = append(out, batch.pointRecords()...)
	}
	return out
}

// checkpointDue reports whether enough time has passed since the last
// journaled checkpoint, and records the new checkpoint time when so.
func (j *Job) checkpointDue(now time.Time, every time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.lastCkpt.IsZero() && now.Sub(j.lastCkpt) < every {
		return false
	}
	j.lastCkpt = now
	return true
}

// progressSnapshot copies the current anytime progress.
func (j *Job) progressSnapshot() *Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.progress == nil {
		return nil
	}
	p := *j.progress
	return &p
}

// observe is the solver progress hook: it folds each new incumbent into
// the poll snapshot. Called synchronously from the solving goroutine.
func (j *Job) observe(in partita.Incumbent) {
	bound, gap := in.Bound, in.Gap
	if !finite(bound) {
		bound = -1
	}
	if !finite(gap) {
		gap = -1
	}
	j.mu.Lock()
	n := 1
	if j.progress != nil {
		n = j.progress.Incumbents + 1
	}
	j.progress = &Progress{
		IncumbentArea: in.Area,
		Bound:         bound,
		Gap:           gap,
		Nodes:         in.Nodes,
		Incumbents:    n,
	}
	j.mu.Unlock()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
