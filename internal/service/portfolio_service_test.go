package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func portfolioSpec(rg int64, gap *float64) JobSpec {
	s := selectSpec(rg)
	s.Mode = ModePortfolio
	s.Gap = gap
	return s
}

// TestPortfolioJobMatchesExact: a gap-0 portfolio job settles on the
// exact engine's proven answer — the same area the plain exact job
// reports — and carries per-engine attribution on the wire.
func TestPortfolioJobMatchesExact(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	exact, err := s.Submit(selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exact)
	ref := exact.Result().Selection
	if !ref.Solved() {
		t.Fatalf("exact job unsolved: %+v", ref)
	}

	zero := 0.0
	pf, err := s.Submit(portfolioSpec(1000, &zero))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, pf)
	got := pf.Result().Selection
	if got == nil || got.Portfolio == nil {
		t.Fatalf("portfolio job missing attribution: %+v", pf.View())
	}
	if got.Area != ref.Area || got.Gain != ref.Gain || got.Status != ref.Status {
		t.Fatalf("portfolio settled %s/%g/%d, exact %s/%g/%d",
			got.Status, got.Area, got.Gain, ref.Status, ref.Area, ref.Gain)
	}
	info := got.Portfolio
	if info.Engine != "exact" || info.Gap != 0 {
		t.Errorf("settled attribution = %s/%g, want exact/0", info.Engine, info.Gap)
	}
	// Gap 0 accepts only proofs, so the first answer is the settled one
	// and the proof trivially confirms it.
	if !info.Confirmed {
		t.Error("gap-0 portfolio result not confirmed")
	}
	if info.Seeded {
		t.Error("cold portfolio job reports a warm seed")
	}
	// The two jobs must not share a content address: mode is part of it.
	if pf.Key == exact.Key {
		t.Error("portfolio and exact jobs share a result key")
	}
}

// TestEditEndpointDerivesAndSeeds: POST /v1/jobs/{id}/edits derives a
// self-contained portfolio job carrying the parent's history plus the
// new edit, warm-started from the parent's cached result — and its
// settled answer matches a cold submission of the same edited spec.
func TestEditEndpointDerivesAndSeeds(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	parent, err := s.Submit(selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, parent)

	body, _ := json.Marshal(EditRequest{
		Edits: []EditDelta{{IPArea: map[string]float64{"FIR8": 50}}},
	})
	resp, err := http.Post(ts.URL+"/v1/jobs/"+parent.ID+"/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("edit endpoint returned %d: %+v", resp.StatusCode, view)
	}
	child, ok := s.Job(view.ID)
	if !ok {
		t.Fatalf("derived job %s not tracked", view.ID)
	}
	waitDone(t, child)

	if child.Spec.Mode != ModePortfolio || child.Spec.ParentKey != parent.Key || len(child.Spec.Edits) != 1 {
		t.Fatalf("derived spec wrong: mode=%q parent=%q edits=%d",
			child.Spec.Mode, child.Spec.ParentKey, len(child.Spec.Edits))
	}
	got := child.Result().Selection
	if got == nil || got.Portfolio == nil {
		t.Fatalf("derived job missing attribution: %+v", child.View())
	}
	if !got.Portfolio.Seeded {
		t.Error("edit job with a cached parent result was not warm-started")
	}

	// Cold reference: the same edited spec without the parent link must
	// settle on the same answer (seeds never change settled proofs).
	cold := child.Spec
	cold.ParentKey = ""
	coldJob, err := s.Submit(cold)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, coldJob)
	ref := coldJob.Result().Selection
	if got.Area != ref.Area || got.Gain != ref.Gain || got.Status != ref.Status {
		t.Fatalf("seeded edit settled %s/%g/%d, cold %s/%g/%d",
			got.Status, got.Area, got.Gain, ref.Status, ref.Area, ref.Gain)
	}
	// And the edit must actually have changed the answer versus the
	// parent (FIR8 got 10x more expensive).
	if parentSel := parent.Result().Selection; parentSel.Area == got.Area {
		for _, c := range got.Chosen {
			if c.IP == "FIR8" {
				t.Errorf("edited job still uses FIR8 at the old area")
			}
		}
	}

	// Chained edit: editing the derived job stacks histories.
	body, _ = json.Marshal(EditRequest{
		Edits: []EditDelta{{IMPGain: map[string]int64{}}, {}},
	})
	resp, err = http.Post(ts.URL+"/v1/jobs/"+child.ID+"/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var chained JobView
	_ = json.NewDecoder(resp.Body).Decode(&chained)
	resp.Body.Close()
	gj, ok := s.Job(chained.ID)
	if !ok {
		t.Fatalf("chained job %s not tracked", chained.ID)
	}
	waitDone(t, gj)
	if len(gj.Spec.Edits) != 3 || gj.Spec.ParentKey != child.Key {
		t.Errorf("chained spec: edits=%d parent=%q, want 3 and the child's key", len(gj.Spec.Edits), gj.Spec.ParentKey)
	}
}

// TestEditEndpointRejections: bad targets and bodies get the right
// status codes.
func TestEditEndpointRejections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/jobs/nope/edits", `{"edits":[{}]}`); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}

	parent, err := s.Submit(selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, parent)
	if code := post("/v1/jobs/"+parent.ID+"/edits", `{"edits":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty edits: %d, want 400", code)
	}
	if code := post("/v1/jobs/"+parent.ID+"/edits", `{"edits":[{"required":-5}]}`); code != http.StatusBadRequest {
		t.Errorf("negative required: %d, want 400", code)
	}

	sweep := selectSpec(0)
	sweep.Kind = KindSweep
	sj, err := s.Submit(sweep)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sj)
	if code := post("/v1/jobs/"+sj.ID+"/edits", `{"edits":[{}]}`); code != http.StatusBadRequest {
		t.Errorf("sweep parent: %d, want 400", code)
	}
}

// TestPortfolioSpecValidation: the mode/gap/edits field rules.
func TestPortfolioSpecValidation(t *testing.T) {
	bad := 1.5
	neg := -0.1
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"gap without mode", func(s *JobSpec) { s.Mode = ""; v := 0.1; s.Gap = &v }},
		{"edits without mode", func(s *JobSpec) { s.Mode = ""; s.Edits = []EditDelta{{}} }},
		{"parent without mode", func(s *JobSpec) { s.Mode = ""; s.ParentKey = "abc" }},
		{"unknown mode", func(s *JobSpec) { s.Mode = "races" }},
		{"portfolio sweep", func(s *JobSpec) { s.Kind = KindSweep; s.RequiredGain = 0 }},
		{"gap too large", func(s *JobSpec) { s.Gap = &bad }},
		{"gap negative", func(s *JobSpec) { s.Gap = &neg }},
		{"negative edit area", func(s *JobSpec) { s.Edits = []EditDelta{{IPArea: map[string]float64{"X": -1}}} }},
		{"negative edit gain", func(s *JobSpec) { s.Edits = []EditDelta{{IMPGain: map[string]int64{"m": -2}}} }},
	}
	for _, tc := range cases {
		spec := portfolioSpec(100, nil)
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, spec)
		}
	}
	ok := portfolioSpec(100, nil)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid portfolio spec rejected: %v", err)
	}
}

// TestPortfolioResultKeyDistinguishes: mode, gap, edits, and parent all
// reach the content address, and identical derived specs coalesce.
func TestPortfolioResultKeyDistinguishes(t *testing.T) {
	base := portfolioSpec(1000, nil)
	k1, err := ResultKey(base)
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(mut func(*JobSpec)) string {
		s := portfolioSpec(1000, nil)
		mut(&s)
		k, err := ResultKey(s)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if k2 := keyOf(func(s *JobSpec) {}); k2 != k1 {
		t.Error("identical portfolio specs hash differently")
	}
	distinct := map[string]string{
		"gap":    keyOf(func(s *JobSpec) { v := 0.1; s.Gap = &v }),
		"edits":  keyOf(func(s *JobSpec) { s.Edits = []EditDelta{{IPArea: map[string]float64{"FIR8": 9}}} }),
		"parent": keyOf(func(s *JobSpec) { s.ParentKey = "deadbeef" }),
		"exact":  func() string { k, _ := ResultKey(selectSpec(1000)); return k }(),
	}
	for name, k := range distinct {
		if k == k1 {
			t.Errorf("%s variant shares the base content address", name)
		}
	}
}

// TestPortfolioMetricsRendered: a completed portfolio job shows up in
// the wins counter and the first-acceptable histogram on /metrics.
func TestPortfolioMetricsRendered(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	job, err := s.Submit(portfolioSpec(1000, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "partitad_portfolio_wins_total{engine=") {
		t.Error("metrics missing partitad_portfolio_wins_total")
	}
	if !strings.Contains(text, "partitad_portfolio_first_acceptable_seconds_count 1") {
		t.Errorf("metrics missing the first-acceptable histogram:\n%s", text)
	}
}
