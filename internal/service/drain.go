package service

import (
	"context"
	"sync"
	"time"
)

// BeginDrain flips the server into draining mode without waiting for
// anything: new submissions are rejected, the readiness probe goes 503,
// in-flight solves see an expired deadline, and — crucially for
// graceful shutdown behind a load balancer — every idle long-poll
// request parked on the drain channel wakes immediately. Call it before
// http.Server.Shutdown; otherwise a SIGTERM arriving while the queue is
// empty leaves idle pollers holding connections open until their wait
// expires, and the HTTP shutdown stalls for the full drain deadline
// with no work left to do. Shutdown calls BeginDrain itself; calling it
// twice is harmless.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drain) })
}

// BeginLeave announces the node's departure from the cluster ring ahead
// of a drain: /readyz flips to 503 with reason "leaving-ring" so peer
// health probes and load balancers steer traffic away before the drain
// starts rejecting it. Single-node shutdowns never call it. Calling it
// twice is harmless.
func (s *Server) BeginLeave() { s.leaving.Store(true) }

// Draining reports whether a drain has begun (the cluster layer stops
// forward-accepting work for a draining core).
func (s *Server) Draining() bool { return s.draining.Load() }

// drainContext presents service drain as a *deadline expiry* rather
// than a cancellation. The distinction matters because the whole solver
// stack (budget.Check → ilp → selector) treats context.Canceled as
// "abort without an answer" but context.DeadlineExceeded as "stop and
// hand back the best incumbent". Graceful shutdown wants the latter:
// when the drain channel closes, every in-flight solve sees an expired
// deadline and returns its anytime result instead of an error.
type drainContext struct {
	parent context.Context
	done   chan struct{}
	mu     sync.Mutex
	err    error
}

// withDrain derives a context from parent that additionally expires —
// with context.DeadlineExceeded — when drain closes. The returned stop
// function releases the watcher goroutine and must be called when the
// work finishes.
func withDrain(parent context.Context, drain <-chan struct{}) (context.Context, func()) {
	d := &drainContext{parent: parent, done: make(chan struct{})}
	stop := make(chan struct{})
	go func() {
		select {
		case <-drain:
			d.finish(context.DeadlineExceeded)
		case <-parent.Done():
			d.finish(parent.Err())
		case <-stop:
		}
	}()
	var once sync.Once
	return d, func() { once.Do(func() { close(stop) }) }
}

func (d *drainContext) finish(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
		close(d.done)
	}
	d.mu.Unlock()
}

// Deadline reports the parent's deadline; the drain edge is not
// predictable in advance.
func (d *drainContext) Deadline() (time.Time, bool) { return d.parent.Deadline() }

// Done is closed when the parent finishes or the drain begins.
func (d *drainContext) Done() <-chan struct{} { return d.done }

// Err reports context.DeadlineExceeded after a drain, or the parent's
// error.
func (d *drainContext) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Value delegates to the parent.
func (d *drainContext) Value(key any) any { return d.parent.Value(key) }
