package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"partita/internal/faults"
	"partita/internal/journal"
)

// Journal record types. One job's lifecycle is submit → running →
// checkpoint* → (done | failed); running and checkpoint records are
// dropped at compaction (a job that was mid-solve at a crash simply
// re-runs from its spec, resuming visibility from its last checkpoint).
const (
	recSubmit     = "submit"
	recRunning    = "running"
	recCheckpoint = "checkpoint"
	recDone       = "done"
	recFailed     = "failed"
	// recLease marks a batch point dispatched to a ring peer: point
	// index, key, assignee, deadline. Leases are advisory — replay
	// reconstructs a leased point as pending (the remote result, if any,
	// never came back) and compaction drops them like running records.
	recLease = "lease"
	// recPoint is a batch point's terminal disposition, written before
	// the point settles in memory (WAL order), so a crash mid-batch
	// replays completed points as done instead of re-solving them. Point
	// records stay live until the batch's done record lands.
	recPoint = "point"
)

// submitData is the payload of a submit record: everything needed to
// re-admit the job after a crash. Owner is the cluster ownership record
// (nil outside cluster mode): a restarted node can tell which journaled
// jobs it accepted on a dead peer's behalf.
type submitData struct {
	ID    string     `json:"id"`
	Key   string     `json:"key"`
	Spec  JobSpec    `json:"spec"`
	Owner *Ownership `json:"owner,omitempty"`
	// Batch carries the full batch spec for batch submissions (nil for
	// ordinary jobs): an unfinished batch re-runs from it after a crash,
	// exactly like a single job re-runs from its JobSpec.
	Batch *BatchSpec `json:"batch,omitempty"`
}

// doneData is the payload of a done record.
type doneData struct {
	Result *JobResult `json:"result"`
	Cached bool       `json:"cached,omitempty"`
	// Memoize records whether the result was admitted to the result
	// cache (drain-degraded results are not), so replay restores the
	// cache faithfully.
	Memoize bool   `json:"memoize,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

// failedData is the payload of a failed record.
type failedData struct {
	Error string `json:"error"`
}

// leaseData is the payload of a lease record: which point went to which
// peer, and until when. Replay does not act on it beyond logging — a
// leased point replays as pending — but the journal tells an operator
// exactly where every in-flight point was when the node died.
type leaseData struct {
	Index    int       `json:"index"`
	Key      string    `json:"key"`
	Peer     string    `json:"peer"`
	Deadline time.Time `json:"deadline"`
}

// pointData is the payload of a point record: the point's terminal
// wire-form result, exactly what the batch view will serve for it.
type pointData struct {
	Result BatchPointResult `json:"result"`
}

// RecoveryStats summarizes a journal replay for logs and /metrics.
type RecoveryStats struct {
	// Enabled reports whether a journal is attached at all.
	Enabled bool
	// ReplayDuration is the wall time spent replaying and rebuilding.
	ReplayDuration time.Duration
	// RecordsReplayed counts whole records decoded from the journal.
	RecordsReplayed int
	// TruncatedBytes and Corrupt mirror journal.Replay: a torn or
	// corrupt tail that was repaired by truncation.
	TruncatedBytes int64
	Corrupt        bool
	// JobsRestored counts finished jobs restored with their results.
	JobsRestored int
	// JobsRequeued counts unfinished jobs re-admitted to the queue.
	JobsRequeued int
}

// Open builds a Server like New and, when cfg.JournalPath is set,
// attaches the write-ahead journal: surviving records are replayed,
// finished jobs come back with their results (and re-populate the
// result cache), unfinished jobs are re-enqueued in submission order,
// and the log is compacted. The server reports not-ready until the
// replay finishes. Call Start afterwards to launch the workers.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.JournalPath == "" {
		s.ready.Store(true)
		return s, nil
	}
	start := time.Now()
	jnl, rep, err := journal.Open(cfg.JournalPath, journal.Options{
		Sync:            cfg.JournalSync,
		OnFsync:         s.metrics.FsyncObserved,
		WriteFault:      func() error { return s.inj.Err(faults.JournalWrite) },
		ShortWriteFault: func() bool { return s.inj.Fire(faults.JournalShortWrite) },
		SyncFault:       func() error { return s.inj.Err(faults.JournalSync) },
	})
	if err != nil {
		return nil, err
	}
	s.jnl = jnl
	if err := s.rebuild(rep); err != nil {
		jnl.Close()
		return nil, err
	}
	s.recovery.Enabled = true
	s.recovery.ReplayDuration = time.Since(start)
	s.recovery.RecordsReplayed = len(rep.Records)
	s.recovery.TruncatedBytes = rep.TruncatedBytes
	s.recovery.Corrupt = rep.Corrupt
	s.metrics.ReplayDone(s.recovery)
	s.ready.Store(true)
	return s, nil
}

// replayedJob accumulates one job's records during replay.
type replayedJob struct {
	submit     journal.Record
	spec       submitData
	running    bool
	checkpoint *Progress
	ckptRec    *journal.Record
	final      *journal.Record
	done       *doneData
	failed     *failedData
	// points holds journaled per-point completions of an unfinished
	// batch, by point index, with their records for compaction.
	points    map[int]*BatchPointResult
	pointRecs map[int]journal.Record
}

// rebuild reconstructs the job table from a replay, re-enqueues
// unfinished work, and compacts the journal down to the live records.
func (s *Server) rebuild(rep *journal.Replay) error {
	byID := map[string]*replayedJob{}
	var order []string
	for i := range rep.Records {
		rec := rep.Records[i]
		switch rec.Type {
		case recSubmit:
			var d submitData
			if err := json.Unmarshal(rec.Data, &d); err != nil {
				return fmt.Errorf("service: replay submit %s: %w", rec.Job, err)
			}
			if _, ok := byID[d.ID]; !ok {
				byID[d.ID] = &replayedJob{submit: rec, spec: d}
				order = append(order, d.ID)
			}
		case recRunning:
			if rj, ok := byID[rec.Job]; ok {
				rj.running = true
			}
		case recCheckpoint:
			if rj, ok := byID[rec.Job]; ok {
				var p Progress
				if err := json.Unmarshal(rec.Data, &p); err == nil {
					rj.checkpoint = &p
					rj.ckptRec = &rep.Records[i]
				}
			}
		case recDone:
			if rj, ok := byID[rec.Job]; ok && rj.final == nil {
				var d doneData
				if err := json.Unmarshal(rec.Data, &d); err != nil {
					return fmt.Errorf("service: replay done %s: %w", rec.Job, err)
				}
				rj.final = &rep.Records[i]
				rj.done = &d
			}
		case recFailed:
			if rj, ok := byID[rec.Job]; ok && rj.final == nil {
				var d failedData
				if err := json.Unmarshal(rec.Data, &d); err != nil {
					return fmt.Errorf("service: replay failed %s: %w", rec.Job, err)
				}
				rj.final = &rep.Records[i]
				rj.failed = &d
			}
		case recPoint:
			if rj, ok := byID[rec.Job]; ok && rj.final == nil {
				var d pointData
				if err := json.Unmarshal(rec.Data, &d); err != nil {
					return fmt.Errorf("service: replay point %s: %w", rec.Job, err)
				}
				if rj.points == nil {
					rj.points = map[int]*BatchPointResult{}
					rj.pointRecs = map[int]journal.Record{}
				}
				pr := d.Result
				rj.points[pr.Index] = &pr
				rj.pointRecs[pr.Index] = rep.Records[i]
			}
		case recLease:
			// Advisory: a leased point whose completion never journaled
			// replays as pending and re-routes from scratch.
		}
	}

	var requeue []*Job
	var live []journal.Record
	for _, id := range order {
		rj := byID[id]
		job := &Job{
			ID:        rj.spec.ID,
			Spec:      rj.spec.Spec,
			Key:       rj.spec.Key,
			owner:     rj.spec.Owner,
			doneCh:    make(chan struct{}),
			recovered: true,
			submitted: rj.submit.At,
			recSubmit: &rj.submit,
		}
		if rj.spec.Batch != nil {
			job.Spec = JobSpec{Kind: KindBatch}
			job.batch = s.restoreBatch(rj, job)
		}
		if rj.checkpoint != nil {
			p := *rj.checkpoint
			job.progress = &p
			job.recCkpt = rj.ckptRec
		}
		switch {
		case rj.done != nil:
			job.status = StatusDone
			job.result = rj.done.Result
			job.cached = rj.done.Cached
			job.finished = rj.final.At
			job.recFinal = rj.final
			close(job.doneCh)
			if rj.done.Memoize && rj.done.Result != nil {
				s.results.Put(job.Key, rj.done.Result)
			}
			s.recovery.JobsRestored++
			live = append(live, *job.recSubmit, *job.recFinal)
		case rj.failed != nil:
			job.status = StatusFailed
			job.errMsg = rj.failed.Error
			job.finished = rj.final.At
			job.recFinal = rj.final
			close(job.doneCh)
			s.recovery.JobsRestored++
			live = append(live, *job.recSubmit, *job.recFinal)
		default:
			job.status = StatusQueued
			requeue = append(requeue, job)
			live = append(live, *job.recSubmit)
			if job.recCkpt != nil {
				live = append(live, *job.recCkpt)
			}
			// An unfinished batch's journaled point completions stay live:
			// they are what stops a replayed batch from re-solving work that
			// already finished before the crash.
			if len(rj.pointRecs) > 0 {
				idxs := make([]int, 0, len(rj.pointRecs))
				for idx := range rj.pointRecs {
					idxs = append(idxs, idx)
				}
				sort.Ints(idxs)
				for _, idx := range idxs {
					live = append(live, rj.pointRecs[idx])
				}
			}
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if job.batch != nil {
			if n := batchIDSeq(job.ID); n > s.batchSeq.Load() {
				s.batchSeq.Store(n)
			}
		} else if n := idSeq(job.ID); n > s.seq.Load() {
			s.seq.Store(n)
		}
	}
	s.recovery.JobsRequeued = len(requeue)

	sort.SliceStable(live, func(i, k int) bool { return live[i].Seq < live[k].Seq })
	if err := s.jnl.Compact(live); err != nil {
		return err
	}

	// Re-admit unfinished jobs in submission order. The sends block when
	// the recovered backlog exceeds the queue depth, so they run on a
	// goroutine and drain as workers pick jobs up; a server stopped
	// before the backlog drains leaves the remainder journaled for the
	// next recovery.
	for _, job := range requeue {
		if job.batch != nil {
			s.inflightBatches[job.Key] = job.batch
			continue
		}
		s.inflight[job.Key] = job
	}
	// Count the whole backlog against the admission queue up front: new
	// submissions see 429 back-pressure until the recovered work drains
	// below the queue depth, and Submit's queue send can never block.
	s.mu.Lock()
	s.queued += len(requeue)
	s.mu.Unlock()
	s.jobWG.Add(len(requeue))
	if len(requeue) > 0 {
		go func() {
			for i, job := range requeue {
				select {
				case s.queue <- job:
				case <-s.stopWorkers:
					s.mu.Lock()
					s.queued -= len(requeue) - i
					s.mu.Unlock()
					for range requeue[i:] {
						s.jobWG.Done()
					}
					return
				}
			}
		}()
	}
	return nil
}

// restoreBatch rebuilds one batch's runtime state from its replayed
// records. A finished batch comes back with its per-point results, its
// event log re-synthesized (so a late stream reader still sees every
// point plus the summary), and its memoized points re-admitted to the
// result cache; an unfinished batch comes back with every point
// pending — runBatch re-checks the cache per point, so points that were
// journaled as done before the crash are not re-solved.
func (s *Server) restoreBatch(rj *replayedJob, job *Job) *Batch {
	spec := *rj.spec.Batch
	b := &Batch{
		ID:        rj.spec.ID,
		Key:       rj.spec.Key,
		job:       job,
		spec:      spec,
		recovered: true,
		status:    StatusQueued,
		submitted: rj.submit.At,
		notify:    make(chan struct{}),
	}
	if rj.done != nil && rj.done.Result != nil && rj.done.Result.Batch != nil {
		res := rj.done.Result.Batch
		b.status = StatusDone
		b.finished = rj.final.At
		b.draining = res.Summary.Draining
		b.points = make([]*batchPoint, len(res.Points))
		for i, pr := range res.Points {
			b.points[i] = &batchPoint{
				spec:        JobSpec{Kind: KindSelect, RequiredGain: pr.RequiredGain},
				key:         pr.Key,
				dup:         -1,
				done:        true,
				disposition: pr.Disposition,
				sel:         pr.Selection,
				errMsg:      pr.Error,
				memoized:    pr.Memoized,
			}
			pr := pr
			b.emitLocked(BatchEvent{Type: EventPoint, Point: i, RequiredGain: pr.RequiredGain, Result: &pr})
			if pr.Memoized && pr.Selection != nil {
				s.results.Put(pr.Key, &JobResult{Kind: KindSelect, Selection: pr.Selection})
			}
		}
		sum := res.Summary
		b.emitLocked(BatchEvent{Type: EventSummary, Point: -1, Summary: &sum})
	} else {
		b.points = make([]*batchPoint, len(spec.Points))
		b.remaining = len(spec.Points)
		firstByKey := map[string]int{}
		for i := range spec.Points {
			p := &batchPoint{dup: -1, disposition: DispositionPending}
			b.points[i] = p
			merged, err := spec.point(i)
			if err == nil {
				p.spec = merged
				p.key, err = merged.resultKey()
			}
			if err != nil {
				// The spec validated at the original submit; a point that
				// no longer resolves (e.g. a workload removed across the
				// restart) fails in place instead of poisoning the batch.
				p.done = true
				p.disposition = DispositionFailed
				p.errMsg = err.Error()
				b.remaining--
				continue
			}
			if first, ok := firstByKey[p.key]; ok {
				p.dup = first
			} else {
				firstByKey[p.key] = i
			}
		}
		// Apply journaled per-point completions: those points replay as
		// done with their recorded dispositions (and re-populate the
		// result cache when they were memoized) instead of re-solving.
		// Their duplicates settle with them, exactly as they did live.
		if len(rj.points) > 0 {
			idxs := make([]int, 0, len(rj.points))
			for idx := range rj.points {
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				if idx < 0 || idx >= len(b.points) {
					continue
				}
				pr := rj.points[idx]
				settle := func(i int, disp string, memoized bool) {
					q := b.points[i]
					if q.done {
						return
					}
					q.done = true
					q.disposition = disp
					q.sel = pr.Selection
					q.errMsg = pr.Error
					q.memoized = memoized
					q.node = pr.Node
					b.remaining--
					b.emitLocked(BatchEvent{
						Type:         EventPoint,
						Point:        i,
						RequiredGain: q.spec.RequiredGain,
						Result: &BatchPointResult{
							Index:        i,
							RequiredGain: q.spec.RequiredGain,
							Key:          q.key,
							Disposition:  disp,
							Selection:    pr.Selection,
							Error:        pr.Error,
							Memoized:     memoized,
							Node:         pr.Node,
						},
					})
				}
				settle(idx, pr.Disposition, pr.Memoized)
				for j := idx + 1; j < len(b.points); j++ {
					if b.points[j].dup == idx {
						settle(j, DispositionDuplicate, false)
					}
				}
				if pr.Memoized && pr.Selection != nil {
					s.results.Put(pr.Key, &JobResult{Kind: KindSelect, Selection: pr.Selection})
				}
				b.setPointRecord(idx, rj.pointRecs[idx])
			}
		}
	}
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	return b
}

// batchIDSeq extracts the numeric suffix of a generated batch ID
// ("b%06d", optionally node-prefixed).
func batchIDSeq(id string) uint64 {
	if i := strings.LastIndexByte(id, 'b'); i > 0 {
		id = id[i:]
	}
	var n uint64
	if _, err := fmt.Sscanf(id, "b%d", &n); err != nil {
		return 0
	}
	return n
}

// idSeq extracts the numeric suffix of a generated job ID ("j%06d",
// optionally node-prefixed as "<name>-j%06d"), so restored servers keep
// allocating fresh IDs.
func idSeq(id string) uint64 {
	if i := strings.LastIndexByte(id, 'j'); i > 0 {
		id = id[i:]
	}
	var n uint64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// Recovery returns the stats of the journal replay that built this
// server (zero-valued when no journal is configured).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// journalAppend writes one record, remembering it on the job for
// compaction. Journal failures are counted and logged into metrics but
// deliberately do not fail the job: partitad favors availability, and a
// sick journal degrades durability, not service. When an append leaves
// the journal degraded (unrepairable write, failed fsync), a compaction
// rewrites the live records — all held in memory — to a fresh synced
// file and the failed record is retried once; if the disk is truly sick
// the journal stays degraded, which /metrics and /readyz surface.
func (s *Server) journalAppend(job *Job, typ string, data any) {
	if s.jnl == nil {
		return
	}
	if err := s.appendRecord(job, typ, data); err != nil {
		s.metrics.JournalError()
		if s.jnl.Degraded() {
			s.compactJournal()
			if !s.jnl.Degraded() {
				if err := s.appendRecord(job, typ, data); err != nil {
					s.metrics.JournalError()
				}
			}
		}
		return
	}
	if s.cfg.CompactEvery > 0 && s.jnl.AppendsSinceCompact() >= uint64(s.cfg.CompactEvery) {
		s.compactJournal()
	}
}

// appendRecord journals one record and remembers it on the job, both
// under jmu: a concurrent compaction snapshots live records under the
// same lock, so it can never miss a record that has already reached the
// journal (which would silently drop it from the rewritten log).
func (s *Server) appendRecord(job *Job, typ string, data any) error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	rec, err := s.jnl.Append(typ, job.ID, data)
	if err != nil {
		return err
	}
	job.setRecord(typ, rec)
	return nil
}

// journalAppendPoint is journalAppend for a batch point completion: the
// record is remembered on the batch keyed by point index (not on the
// job, whose record table holds one slot per type), so compaction keeps
// every completed point of an unfinished batch. Same degraded-journal
// retry policy as journalAppend.
func (s *Server) journalAppendPoint(job *Job, idx int, data pointData) {
	if s.jnl == nil || job.batch == nil {
		return
	}
	if err := s.appendPointRecord(job, idx, data); err != nil {
		s.metrics.JournalError()
		if s.jnl.Degraded() {
			s.compactJournal()
			if !s.jnl.Degraded() {
				if err := s.appendPointRecord(job, idx, data); err != nil {
					s.metrics.JournalError()
				}
			}
		}
		return
	}
	if s.cfg.CompactEvery > 0 && s.jnl.AppendsSinceCompact() >= uint64(s.cfg.CompactEvery) {
		s.compactJournal()
	}
}

// appendPointRecord is appendRecord's batch-point twin, under the same
// jmu ordering contract.
func (s *Server) appendPointRecord(job *Job, idx int, data pointData) error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	rec, err := s.jnl.Append(recPoint, job.ID, data)
	if err != nil {
		return err
	}
	job.batch.setPointRecord(idx, rec)
	return nil
}

// compactJournal rewrites the journal down to the records that still
// matter: for every tracked job, its submit record plus its final state
// (or latest checkpoint while unfinished).
func (s *Server) compactJournal() {
	if s.jnl == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	var live []journal.Record
	for _, job := range jobs {
		live = append(live, job.liveRecords()...)
	}
	sort.SliceStable(live, func(i, k int) bool { return live[i].Seq < live[k].Seq })
	if err := s.jnl.Compact(live); err != nil {
		s.metrics.JournalError()
	}
}

// CloseJournal syncs and closes the journal, if any. Called by the
// daemon after a drain.
func (s *Server) CloseJournal() error {
	if s.jnl == nil {
		return nil
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.jnl.Close()
}
