package service

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"partita/internal/journal"
)

// splitRemote completes some gains instantly with a proven selection
// and blocks the rest until released, so a test can snapshot the
// journal with a mix of completed and leased points in it.
type splitRemote struct {
	complete map[int64]bool
	release  chan struct{}

	mu         sync.Mutex
	dispatched int
}

func (f *splitRemote) route(key string) (string, bool) { return "peer1", true }

func (f *splitRemote) solve(ctx context.Context, peer string, spec JobSpec) (*JobResult, int, error) {
	f.mu.Lock()
	f.dispatched++
	f.mu.Unlock()
	if !f.complete[spec.RequiredGain] {
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-f.release:
			return nil, 0, context.Canceled // crash-side cleanup: requeue
		}
	}
	return &JobResult{Kind: KindSelect, Selection: &SelectionResult{
		Status: "optimal", Gain: spec.RequiredGain, Area: 3,
	}}, 0, nil
}

func (f *splitRemote) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dispatched
}

// TestFanoutReplayPartialBatch is the journal-replay contract of a
// distributed batch: a batch snapshot with some points completed
// remotely, some under live leases, and some finished locally must
// replay to the correct disposition set — journaled completions come
// back done (and re-populate the cache, so nothing re-solves), leased
// points come back pending and re-run.
func TestFanoutReplayPartialBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")

	f := &splitRemote{
		complete: map[int64]bool{500: true, 1000: true},
		release:  make(chan struct{}),
	}
	route := func(key string) (string, bool) { return f.route(key) }
	s1, err := Open(Config{
		Workers:     1,
		JournalPath: path,
		BatchFanout: true,
		RemoteSolve: f.solve,
		BatchLease:  time.Minute,
		RoutePoint: func(key string) (string, bool) {
			// The last point (gain 2500) runs locally so the snapshot also
			// carries a journaled local completion.
			if key == localKey {
				return "", false
			}
			return route(key)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := batchSpec(500, 1000, 1500, 2000, 2500)
	merged, err := spec.point(4)
	if err != nil {
		t.Fatal(err)
	}
	if localKey, err = merged.resultKey(); err != nil {
		t.Fatal(err)
	}
	s1.Start()
	b, err := s1.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the snapshot state: remote points 0 and 1 completed, the
	// local point solved, and the two blocking points dispatched (their
	// lease records land before RemoteSolve is invoked).
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := b.View(true)
		done := 0
		for _, p := range v.Points {
			if p.Done {
				done++
			}
		}
		if done == 3 && f.count() == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot state never reached: %+v (dispatched %d)", v, f.count())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// "SIGKILL": copy the journal as it stands — two remote leases still
	// open — then let the first server finish cleanly.
	crashed := filepath.Join(dir, "crashed")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(crashed, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	close(f.release)
	waitBatch(t, b)
	shutdownServer(t, s1)

	// Replay the crash snapshot on a fresh server with no cluster hooks:
	// the fanned-out batch must finish entirely locally.
	s2, err := Open(Config{Workers: 1, JournalPath: crashed})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Recovery().JobsRequeued != 1 {
		t.Fatalf("requeued = %d, want 1", s2.Recovery().JobsRequeued)
	}
	rb, ok := s2.Batch(b.ID)
	if !ok {
		t.Fatalf("batch %s not restored", b.ID)
	}
	v := rb.View(true)
	if v.Remaining != 2 {
		t.Fatalf("restored remaining = %d, want 2 (leased points pending): %+v", v.Remaining, v)
	}
	for _, p := range v.Points[:2] {
		if !p.Done || p.Disposition != DispositionRemote || p.Node != "peer1" {
			t.Fatalf("replayed remote point %d: %+v", p.Index, p)
		}
	}
	if p := v.Points[4]; !p.Done || (p.Disposition != DispositionSolved && p.Disposition != DispositionReused) {
		t.Fatalf("replayed local point: %+v", p)
	}
	for _, p := range v.Points[2:4] {
		if p.Done || p.Disposition != DispositionPending || p.Node != "" {
			t.Fatalf("leased point %d did not replay as pending: %+v", p.Index, p)
		}
	}

	s2.Start()
	defer shutdownServer(t, s2)
	waitBatch(t, rb)
	sum := *rb.View(false).Summary
	if sum.Failed != 0 || sum.Remote != 2 || sum.Solved+sum.Reused != 3 {
		t.Fatalf("replayed batch summary: %+v", sum)
	}

	// No journaled completion may re-solve: resubmitting each completed
	// point as a single job must hit the replayed cache.
	before := solvesStarted(s2)
	for _, rg := range []int64{500, 1000, 2500} {
		job, err := s2.Submit(selectSpec(rg))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		if !job.View().Cached {
			t.Errorf("journaled point rg=%d re-solved after replay", rg)
		}
	}
	if after := solvesStarted(s2); after != before {
		t.Errorf("resubmits after replay solved: %d -> %d", before, after)
	}
}

// localKey routes one point of TestFanoutReplayPartialBatch locally; a
// package var because the RoutePoint hook is built before the batch
// spec's keys are computable.
var localKey string

// TestFanoutReplayAllPointsJournaled covers the finalize-on-replay
// edge: a crash after every point's completion was journaled but before
// the batch's done record landed. The replayed batch has nothing to
// solve — runBatch must still finalize it to a terminal summary.
func TestFanoutReplayAllPointsJournaled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")

	spec := batchSpec(500, 1000)
	jnl, _, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(spec.Points))
	for i := range spec.Points {
		merged, err := spec.point(i)
		if err != nil {
			t.Fatal(err)
		}
		if keys[i], err = merged.resultKey(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jnl.Append(recSubmit, "b000001", submitData{
		ID: "b000001", Key: batchKey(keys), Batch: &spec,
	}); err != nil {
		t.Fatal(err)
	}
	for i, rg := range []int64{500, 1000} {
		pkey := keys[i]
		if _, err := jnl.Append(recPoint, "b000001", pointData{Result: BatchPointResult{
			Index: i, RequiredGain: rg, Key: pkey, Disposition: DispositionRemote,
			Selection: &SelectionResult{Status: "optimal", Gain: rg}, Memoized: true,
			Node: "peer2",
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer shutdownServer(t, s)
	rb, ok := s.Batch("b000001")
	if !ok {
		t.Fatal("batch not restored")
	}
	waitBatch(t, rb)
	sum := *rb.View(false).Summary
	if sum.Remote != 2 || sum.Failed != 0 || sum.Total != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	if solves := solvesStarted(s); solves != 0 {
		t.Errorf("fully-journaled batch re-solved %d points", solves)
	}
	// The journaled memoizations are live again.
	for i, pkey := range keys {
		if _, ok := s.CachedResult(pkey); !ok {
			t.Errorf("point %d not re-memoized from its journaled completion", i)
		}
	}
}
