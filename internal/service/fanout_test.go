package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partita/internal/faults"
)

// fakeRemote is a stand-in for the cluster work client: it routes every
// point to one named peer and answers with a canned proven selection.
type fakeRemote struct {
	mu     sync.Mutex
	solved []string // keys dispatched to RemoteSolve
	fail   atomic.Bool
	block  atomic.Bool // block until the lease context expires
}

func (f *fakeRemote) route(key string) (string, bool) { return "peer1", true }

func (f *fakeRemote) solve(ctx context.Context, peer string, spec JobSpec) (*JobResult, int, error) {
	f.mu.Lock()
	key, _ := spec.resultKey()
	f.solved = append(f.solved, key)
	f.mu.Unlock()
	if f.block.Load() {
		<-ctx.Done()
		return nil, 0, ctx.Err()
	}
	if f.fail.Load() {
		return nil, 2, context.DeadlineExceeded
	}
	return &JobResult{Kind: KindSelect, Selection: &SelectionResult{
		Status: "optimal", Gain: spec.RequiredGain, Area: 7,
	}}, 1, nil
}

func (f *fakeRemote) dispatched() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.solved)
}

func remoteMetrics(s *Server) (points map[string]uint64, retries, expired uint64) {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	points = map[string]uint64{}
	for k, v := range s.metrics.remotePoints {
		points[k] = v
	}
	return points, s.metrics.remoteRetries, s.metrics.leaseExpired
}

func TestBatchFanoutRemoteCompletion(t *testing.T) {
	f := &fakeRemote{}
	s := newTestServer(t, Config{
		Workers:     1,
		BatchFanout: true,
		RoutePoint:  f.route,
		RemoteSolve: f.solve,
	})

	gains := []int64{500, 1000, 1500}
	b, err := s.SubmitBatch(batchSpec(gains...))
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)

	v := b.View(true)
	if v.Status != StatusDone || v.Remaining != 0 {
		t.Fatalf("batch view: %+v", v)
	}
	sum := *v.Summary
	if sum.Remote != len(gains) || sum.Failed != 0 {
		t.Fatalf("summary: %+v, want %d remote", sum, len(gains))
	}
	for _, p := range v.Points {
		if p.Disposition != DispositionRemote || p.Node != "peer1" {
			t.Errorf("point %d: disposition=%q node=%q, want remote/peer1", p.Index, p.Disposition, p.Node)
		}
	}
	if got := f.dispatched(); got != len(gains) {
		t.Errorf("RemoteSolve dispatched %d points, want %d", got, len(gains))
	}
	points, retries, _ := remoteMetrics(s)
	if points["completed"] != uint64(len(gains)) || points["requeued"] != 0 {
		t.Errorf("remote point metrics: %v", points)
	}
	if retries != uint64(len(gains)) { // the fake reports 1 retry per point
		t.Errorf("remote retries = %d, want %d", retries, len(gains))
	}
	if solves := solvesStarted(s); solves != 0 {
		t.Errorf("local solves = %d, want 0 (every point went remote)", solves)
	}

	// Proven remote results are memoized under the point's own content
	// address: a single submit of the same spec is a cache hit.
	job, err := s.Submit(selectSpec(gains[0]))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if jv := job.View(); !jv.Cached {
		t.Errorf("single submit after remote batch completion missed the cache: %+v", jv)
	}
}

func TestBatchFanoutRequeuesFailedDispatchesLocally(t *testing.T) {
	f := &fakeRemote{}
	f.fail.Store(true)
	s := newTestServer(t, Config{
		Workers:     1,
		BatchFanout: true,
		RoutePoint:  f.route,
		RemoteSolve: f.solve,
	})

	gains := []int64{400, 800}
	b, err := s.SubmitBatch(batchSpec(gains...))
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)

	sum := *b.View(false).Summary
	if sum.Failed != 0 || sum.Remote != 0 {
		t.Fatalf("summary after requeue: %+v", sum)
	}
	if sum.Solved+sum.Reused != len(gains) {
		t.Fatalf("requeued points not solved locally: %+v", sum)
	}
	points, _, _ := remoteMetrics(s)
	if points["requeued"] != uint64(len(gains)) || points["completed"] != 0 {
		t.Errorf("remote point metrics: %v", points)
	}
	for _, p := range b.View(true).Points {
		if p.Node != "" {
			t.Errorf("requeued point %d still attributed to node %q", p.Index, p.Node)
		}
	}
}

func TestBatchFanoutLeaseExpiryRequeues(t *testing.T) {
	f := &fakeRemote{}
	f.block.Store(true)
	s := newTestServer(t, Config{
		Workers:     1,
		BatchFanout: true,
		RoutePoint:  f.route,
		RemoteSolve: f.solve,
		BatchLease:  20 * time.Millisecond,
	})

	b, err := s.SubmitBatch(batchSpec(600))
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)

	sum := *b.View(false).Summary
	if sum.Failed != 0 || sum.Solved+sum.Reused != 1 {
		t.Fatalf("summary after lease expiry: %+v", sum)
	}
	points, _, expired := remoteMetrics(s)
	if expired == 0 {
		t.Error("lease expiry not counted")
	}
	if points["requeued"] != 1 {
		t.Errorf("remote point metrics: %v", points)
	}
}

func TestBatchFanoutDisabledWithoutHooks(t *testing.T) {
	// The flag alone must not enable fan-out: without both hooks the
	// batch runs entirely locally.
	s := newTestServer(t, Config{Workers: 1, BatchFanout: true})
	b, err := s.SubmitBatch(batchSpec(300))
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	sum := *b.View(false).Summary
	if sum.Remote != 0 || sum.Solved+sum.Reused != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	points, _, _ := remoteMetrics(s)
	if len(points) != 0 {
		t.Errorf("remote metrics on a local batch: %v", points)
	}
}

func TestDeadlineHeaderClampsMemoization(t *testing.T) {
	// A solve clamped to a forwarded caller's deadline must not memoize
	// an unproven outcome: the stall pushes the solve past the inherited
	// 20ms budget, so the anytime result stays out of the cache and an
	// unclamped resubmit really solves.
	inj, err := faults.Parse("seed=7,solver.stall=1,solver.stall.delay=60ms")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, Faults: inj})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"kind":"select","source":` + strconv.Quote(testSource) +
		`,"root":"process","requiredGain":700,"catalog":[{"id":"FIR8","name":"f","funcs":["fir"],"inPorts":2,"outPorts":2,"inRate":4,"outRate":4,"latency":8,"pipelined":true,"area":5}]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "20")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var accepted JobView
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	job, ok := s.Job(accepted.ID)
	if !ok {
		t.Fatalf("job %s not tracked", accepted.ID)
	}
	if got := job.Spec.inheritDeadline; got != 20*time.Millisecond {
		t.Fatalf("inherited deadline = %v, want 20ms", got)
	}
	waitDone(t, job)
	jv := job.View()
	if jv.Status != StatusDone {
		t.Fatalf("clamped job: %+v", jv)
	}
	if !job.deadlineClamped {
		t.Fatal("20ms inherited deadline did not clamp the default budget")
	}
	// The memoize gate under a clamp: proven outcomes cache, unproven
	// outcomes do not. Either way the cache must agree with the proof.
	_, cached := s.CachedResult(job.Key)
	if proven := provenSelection(jv.Result.Selection); cached != proven {
		t.Fatalf("clamped solve memoized=%v but proven=%v (%+v)", cached, proven, jv.Result.Selection)
	}
}

func TestProvenOutcome(t *testing.T) {
	for outcome, want := range map[string]bool{
		"optimal": true, "infeasible": true,
		"feasible": false, "degraded": false, "error": false, "unbounded": false,
	} {
		if got := provenOutcome(outcome); got != want {
			t.Errorf("provenOutcome(%q) = %v, want %v", outcome, got, want)
		}
	}
	if provenSelection(nil) {
		t.Error("nil selection must not be proven")
	}
	if provenSelection(&SelectionResult{Status: "optimal", Degraded: "deadline"}) {
		t.Error("degraded selection must not be proven")
	}
	if !provenSelection(&SelectionResult{Status: "infeasible"}) {
		t.Error("infeasible proof must be proven")
	}
}
