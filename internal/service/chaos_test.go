package service

// In-process chaos coverage: crash-journal recovery, fault injection,
// and drain behavior. The full kill-and-restart test (real SIGKILL of a
// real daemon) lives in the client package's chaos test, gated behind
// PARTITAD_CHAOS=1; everything here runs in tier-1.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"partita/internal/faults"
	"partita/internal/journal"
)

func mustInjector(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// openTestServer is newTestServer for journaled servers built with Open.
func openTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		_ = s.CloseJournal()
	})
	return s
}

func TestCrashRecoveryRestoresAndRequeues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")

	// Phase 1: a healthy daemon journals five finished jobs, then exits
	// cleanly.
	s1, err := Open(Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	type finished struct {
		id   string
		spec JobSpec
		view JobView
	}
	var done []finished
	for i := 0; i < 5; i++ {
		job, err := s1.Submit(selectSpec(int64(1000 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		done = append(done, finished{job.ID, job.Spec, job.View()})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: simulate a daemon that accepted 15 more jobs — one
	// mid-solve with a journaled incumbent checkpoint — and was then
	// SIGKILLed mid-append (torn tail).
	jnl, _, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const ckptArea = 1e9
	var pendingIDs []string
	for i := 0; i < 15; i++ {
		spec := selectSpec(int64(3000 + i))
		key, err := spec.resultKey()
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("j%06d", 100+i)
		pendingIDs = append(pendingIDs, id)
		if _, err := jnl.Append(recSubmit, id, submitData{ID: id, Key: key, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if _, err := jnl.Append(recRunning, id, nil); err != nil {
				t.Fatal(err)
			}
			ck := Progress{IncumbentArea: ckptArea, Bound: -1, Gap: -1, Nodes: 3, Incumbents: 1}
			if _, err := jnl.Append(recCheckpoint, id, ck); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: the header promises 64 payload bytes, three arrive.
	if _, err := f.Write([]byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 3: recovery. Finished jobs come back with results, the torn
	// tail is repaired, pending jobs re-run to completion.
	s2 := openTestServer(t, Config{Workers: 2, JournalPath: path})
	rec := s2.Recovery()
	if !rec.Enabled || rec.JobsRestored != 5 || rec.JobsRequeued != 15 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if rec.TruncatedBytes == 0 {
		t.Errorf("torn tail not detected: %+v", rec)
	}

	for _, fin := range done {
		job, ok := s2.Job(fin.id)
		if !ok {
			t.Fatalf("finished job %s lost in recovery", fin.id)
		}
		v := job.View()
		if v.Status != StatusDone || !v.Recovered {
			t.Fatalf("restored job %s: %+v", fin.id, v)
		}
		if !reflect.DeepEqual(v.Result, fin.view.Result) {
			t.Errorf("restored result differs for %s:\nbefore: %+v\nafter:  %+v", fin.id, fin.view.Result, v.Result)
		}
	}

	for i, id := range pendingIDs {
		job, ok := s2.Job(id)
		if !ok {
			t.Fatalf("accepted job %s lost in recovery", id)
		}
		waitDone(t, job)
		v := job.View()
		if v.Status != StatusDone || !v.Recovered {
			t.Fatalf("requeued job %s: %+v", id, v)
		}
		if !v.Result.Selection.Solved() {
			t.Fatalf("requeued job %s unsolved: %+v", id, v.Result.Selection)
		}
		if i == 0 && v.Result.Selection.Area > ckptArea {
			t.Errorf("recovered incumbent worse than last checkpoint: %g > %g",
				v.Result.Selection.Area, float64(ckptArea))
		}
	}

	// The result cache was restored: resubmitting a finished spec is
	// answered immediately.
	hit, err := s2.Submit(done[0].spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := hit.View(); v.Status != StatusDone || !v.Cached {
		t.Errorf("restored result cache missed: %+v", v)
	}
}

func TestRecoveryFromEmptyAndMissingJournal(t *testing.T) {
	dir := t.TempDir()
	// Missing file: a fresh journal.
	s := openTestServer(t, Config{Workers: 1, JournalPath: filepath.Join(dir, "fresh")})
	if rec := s.Recovery(); rec.RecordsReplayed != 0 || rec.JobsRequeued != 0 {
		t.Fatalf("fresh journal recovery: %+v", rec)
	}
	job, err := s.Submit(selectSpec(500))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	// Zero-length file: equally fresh.
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTestServer(t, Config{Workers: 1, JournalPath: empty})
	if rec := s2.Recovery(); rec.RecordsReplayed != 0 || rec.Corrupt {
		t.Fatalf("zero-length journal recovery: %+v", rec)
	}
}

func TestJournalCompactedOnRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s1, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	for i := 0; i < 4; i++ {
		job, err := s1.Submit(selectSpec(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	before, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}

	s2 := openTestServer(t, Config{Workers: 1, JournalPath: path})
	_ = s2
	after, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	// Replay compaction drops running/checkpoint noise: only submit +
	// final records survive (2 per job).
	if len(after.Records) != 8 {
		t.Errorf("compacted journal has %d records, want 8 (was %d)", len(after.Records), len(before.Records))
	}
	if len(after.Records) >= len(before.Records) {
		t.Errorf("compaction did not shrink the journal: %d -> %d", len(before.Records), len(after.Records))
	}
	for _, r := range after.Records {
		if r.Type != recSubmit && r.Type != recDone && r.Type != recFailed {
			t.Errorf("dead record type %q survived compaction", r.Type)
		}
	}
}

func TestFaultWorkerPanicContained(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Faults: mustInjector(t, "seed=1,worker.panic=1")})
	first, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	v := first.View()
	if v.Status != StatusFailed || !strings.Contains(v.Error, "worker panic") {
		t.Fatalf("panicked job: %+v", v)
	}
	// The worker survived the panic: a second job still reaches a
	// terminal state instead of waiting forever on a dead pool.
	second, err := s.Submit(selectSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second)
	s.metrics.mu.Lock()
	panics := s.metrics.panics
	s.metrics.mu.Unlock()
	if panics < 2 {
		t.Errorf("panics recovered = %d, want >= 2", panics)
	}
}

func TestFaultQueueFullGives429WithRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, Faults: mustInjector(t, "seed=2,queue.full=1")})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := strings.NewReader(`{"kind":"select","workload":"gsm","requiredGain":100}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestFaultJournalWriteDegradesAvailabilityHolds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestServer(t, Config{Workers: 1, JournalPath: path,
		Faults: mustInjector(t, "seed=3,journal.write=1")})
	// Every journal append fails, yet the job is accepted and solved:
	// partitad trades durability down, never availability.
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.View(); v.Status != StatusDone {
		t.Fatalf("job under journal faults: %+v", v)
	}
	s.metrics.mu.Lock()
	jerrs := s.metrics.journalErrors
	s.metrics.mu.Unlock()
	if jerrs == 0 {
		t.Error("journal errors not counted")
	}
}

func TestFaultJournalShortWriteRecoversOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s1, err := Open(Config{Workers: 1, JournalPath: path,
		Faults: mustInjector(t, "seed=4,journal.shortwrite=0.4")})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	for i := 0; i < 6; i++ {
		job, err := s1.Submit(selectSpec(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_ = s1.CloseJournal()

	// Every torn write was repaired in place (truncated back to the last
	// whole record), so the log replays clean: no record that reached the
	// journal after a tear is stranded behind a bad CRC.
	s2 := openTestServer(t, Config{Workers: 1, JournalPath: path})
	rec := s2.Recovery()
	if rec.JobsRestored+rec.JobsRequeued == 0 {
		t.Errorf("nothing recovered despite successful appends: %+v", rec)
	}
	if rec.Corrupt || rec.TruncatedBytes != 0 {
		t.Errorf("torn writes were not repaired in place: %+v", rec)
	}
	for _, id := range func() []string {
		s2.mu.Lock()
		defer s2.mu.Unlock()
		return append([]string(nil), s2.order...)
	}() {
		job, _ := s2.Job(id)
		waitDone(t, job)
	}
}

func TestFaultJournalSyncDegradationSurfaced(t *testing.T) {
	// Every append's fsync fails: the journal degrades (the self-healing
	// compaction succeeds, but the retried append's fsync fails again),
	// the job still completes, and the degradation is visible on both
	// /readyz and /metrics so a load balancer can steer away.
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestServer(t, Config{Workers: 1, JournalPath: path,
		Faults: mustInjector(t, "seed=7,journal.sync=1")})
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.View(); v.Status != StatusDone {
		t.Fatalf("job under fsync faults: %+v", v)
	}
	if !s.jnl.Degraded() {
		t.Fatal("journal not degraded under persistent fsync failure")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("degraded readyz = %d %q, want 503 with status degraded", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readBody(t, resp)
	resp.Body.Close()
	for _, want := range []string{"partitad_journal_degraded 1", "partitad_ready 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestJournalSubmitRecordPrecedesLifecycle(t *testing.T) {
	// Submit journals the submit record before the job becomes visible to
	// any worker, so a fast worker can never get its running/done records
	// into the log first — replay would drop the job's journaled result
	// and compaction would freeze the inverted order permanently.
	path := filepath.Join(t.TempDir(), "wal")
	s, err := Open(Config{Workers: 4, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i := 0; i < 12; i++ {
		job, err := s.Submit(selectSpec(int64(700 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]string{}
	var lastSeq uint64
	for _, r := range rep.Records {
		if r.Seq <= lastSeq {
			t.Errorf("journal seq not strictly increasing: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		if _, ok := first[r.Job]; !ok {
			first[r.Job] = r.Type
		}
	}
	if len(first) != 12 {
		t.Fatalf("journaled jobs = %d, want 12", len(first))
	}
	for id, typ := range first {
		if typ != recSubmit {
			t.Errorf("job %s: first journaled record is %q, want %q", id, typ, recSubmit)
		}
	}
}

func TestFaultSolverStallDelaysJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1,
		Faults: mustInjector(t, "seed=5,solver.stall=1,solver.stall.delay=120ms")})
	start := time.Now()
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Errorf("stalled job finished in %v, want >= 120ms", elapsed)
	}
	if v := job.View(); v.Status != StatusDone {
		t.Fatalf("stalled job: %+v", v)
	}
}

func TestFaultClockSkewShiftsTimestamps(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Faults: mustInjector(t, "clock.skew=1h")})
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if ahead := time.Until(job.View().SubmittedAt); ahead < 50*time.Minute {
		t.Errorf("submitted timestamp skewed only %v ahead, want ~1h", ahead)
	}
}

func TestLongPollReleasedOnDrain(t *testing.T) {
	s := New(Config{Workers: 1}) // workers never started: the job can't finish
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		s.BeginDrain()
	}()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "?wait=25s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("idle long-poll held %v across drain; want prompt release", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("long-poll status = %d", resp.StatusCode)
	}
}

func TestLongPollWakesOnCompletion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	job, err := s.Submit(selectSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "?wait=20s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("long-poll did not wake on completion (%v)", elapsed)
	}
}

func TestLongPollRejectsBadWait(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "?wait=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait status = %d", resp.StatusCode)
	}
}

func TestLivenessAndReadinessSplit(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("live healthz = %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("live readyz = %d", code)
	}
	s.BeginDrain()
	// Liveness holds through the drain; readiness drops so the load
	// balancer stops routing.
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", code)
	}
}

func TestReadinessFalseBeforeReplayFinishes(t *testing.T) {
	// New with a journal path configured models the mid-replay state:
	// Open flips ready only after the rebuild completes.
	s := New(Config{Workers: 1, JournalPath: "configured-but-not-replayed"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-replay readyz = %d, want 503", resp.StatusCode)
	}
}

func TestJournalMetricsExposed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestServer(t, Config{Workers: 1, JournalPath: path,
		Faults: mustInjector(t, "seed=9,solver.stall=1,solver.stall.delay=1ms")})
	job, err := s.Submit(selectSpec(123))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readBody(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"partitad_journal_enabled 1",
		"partitad_journal_replay_seconds",
		"partitad_journal_records_replayed 0",
		"partitad_journal_compactions_total",
		"partitad_journal_fsync_seconds_bucket",
		"partitad_journal_errors_total 0",
		"partitad_journal_degraded 0",
		`partitad_faults_injected_total{point="solver.stall"} 1`,
		"partitad_ready 1",
		"partitad_panics_recovered_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "partitad_journal_fsync_seconds_count") {
		t.Error("fsync histogram missing")
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
