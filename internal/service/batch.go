package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"partita"
	"partita/internal/journal"
)

// The batch API: POST /v1/batches accepts many (program, catalog,
// required-gain) points in one request and solves them as one unit of
// work. Points are content-addressed exactly like single select jobs,
// so a point already answered by the result cache completes at submit
// time, a point identical to an in-flight job attaches to it instead of
// re-solving, and duplicate points inside one batch are solved once.
// The remainder is journaled and fanned into the worker pool as one
// batch job whose executor groups points by analyzed program and drives
// the shared-analysis sweep pipeline (partita.SweepPipeline) over each
// group: the program is analyzed once, points whose answer is proven by
// a looser point complete with zero solver work, and solved points are
// warm-started. Results stream incrementally over the batch's event log
// (see stream.go).

// KindBatch marks the internal job that carries one accepted batch
// through the worker pool. It is not a submittable kind on /v1/jobs.
const KindBatch Kind = "batch"

// BatchPoint is one point of a batch: a required gain plus optional
// overrides of the batch defaults. A zero field inherits the default;
// naming a workload clears an inherited inline program and vice versa.
type BatchPoint struct {
	RequiredGain int64 `json:"requiredGain"`
	// Program overrides (see JobSpec).
	Workload string        `json:"workload,omitempty"`
	Source   string        `json:"source,omitempty"`
	Root     string        `json:"root,omitempty"`
	Catalog  []*partita.IP `json:"catalog,omitempty"`
	Options  *SpecOptions  `json:"options,omitempty"`
	// Budget overrides.
	TimeoutMs   int64 `json:"timeoutMs,omitempty"`
	MaxNodes    int   `json:"maxNodes,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
}

// BatchSpec is one submitted batch: shared defaults (program, budgets)
// plus the points. Defaults.Kind must be empty or "select"; every point
// resolves to an ordinary select JobSpec, which is what makes batch
// points and single jobs share one content-address space.
type BatchSpec struct {
	Defaults JobSpec      `json:"defaults"`
	Points   []BatchPoint `json:"points"`
}

// point resolves point i against the defaults into the select JobSpec
// it is equivalent to.
func (b *BatchSpec) point(i int) (JobSpec, error) {
	p := b.Points[i]
	spec := b.Defaults
	spec.Kind = KindSelect
	spec.Points = 0
	spec.PerPath = nil
	if p.Workload != "" {
		spec.Workload = p.Workload
		spec.Source, spec.Root, spec.Catalog = "", "", nil
	}
	if p.Source != "" {
		spec.Source = p.Source
		spec.Workload = ""
	}
	if p.Root != "" {
		spec.Root = p.Root
	}
	if len(p.Catalog) > 0 {
		spec.Catalog = p.Catalog
		spec.Workload = ""
	}
	if p.Options != nil {
		spec.Options = *p.Options
	}
	spec.RequiredGain = p.RequiredGain
	if p.TimeoutMs > 0 {
		spec.TimeoutMs = p.TimeoutMs
	}
	if p.MaxNodes > 0 {
		spec.MaxNodes = p.MaxNodes
	}
	if p.Parallelism > 0 {
		spec.Parallelism = p.Parallelism
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// Batch submission errors beyond the shared admission sentinels.
var (
	// ErrBatchTooLarge reports a batch over the configured point cap;
	// the HTTP layer maps it (and an oversized request body) to 413.
	ErrBatchTooLarge = errors.New("service: batch exceeds the point cap")
)

// BatchPointError names the offending point of an invalid batch.
type BatchPointError struct {
	Index int
	Err   error
}

func (e *BatchPointError) Error() string {
	return fmt.Sprintf("service: batch point %d: %v", e.Index, e.Err)
}

func (e *BatchPointError) Unwrap() error { return e.Err }

// Point dispositions: how the batch disposed of each point.
const (
	// DispositionPending: not yet terminal.
	DispositionPending = "pending"
	// DispositionCached: answered from the result cache without queuing.
	DispositionCached = "cached"
	// DispositionCoalesced: attached to an identical in-flight job.
	DispositionCoalesced = "coalesced"
	// DispositionDuplicate: identical to an earlier point of this batch;
	// carries that point's result.
	DispositionDuplicate = "duplicate"
	// DispositionSolved: the pipeline ran the exact solver.
	DispositionSolved = "solved"
	// DispositionReused: completed with zero solver work — its answer
	// was proven by a looser point of the same program (plateau reuse or
	// propagated infeasibility).
	DispositionReused = "reused"
	// DispositionRemote: solved by the point's ring owner under a
	// dispatch lease (batch fan-out); the result came back over the
	// cluster work client.
	DispositionRemote = "remote"
	// DispositionFailed: the point errored.
	DispositionFailed = "failed"
)

// BatchPointResult is one finished point on the wire (events, batch
// result, journal).
type BatchPointResult struct {
	Index        int              `json:"index"`
	RequiredGain int64            `json:"requiredGain"`
	Key          string           `json:"key"`
	Disposition  string           `json:"disposition"`
	Selection    *SelectionResult `json:"selection,omitempty"`
	Error        string           `json:"error,omitempty"`
	// Memoized records whether the point's result entered the result
	// cache (replay restores those entries).
	Memoized bool `json:"memoized,omitempty"`
	// Node names the peer that solved a remotely-dispatched point
	// (empty for local dispositions).
	Node string `json:"node,omitempty"`
}

// BatchSummary is the terminal accounting of a batch: how many points
// each disposition claimed and the batch wall clock.
type BatchSummary struct {
	Total      int   `json:"total"`
	Cached     int   `json:"cached"`
	Coalesced  int   `json:"coalesced"`
	Duplicates int   `json:"duplicates"`
	Solved     int   `json:"solved"`
	Reused     int   `json:"reused"`
	// Remote counts points solved by their ring owners via fan-out.
	Remote    int   `json:"remote,omitempty"`
	Failed    int   `json:"failed"`
	ElapsedMs int64 `json:"elapsedMs"`
	// Draining marks a batch finished under a server drain: unfinished
	// points degraded to their best incumbents and nothing was memoized.
	Draining bool `json:"draining,omitempty"`
}

// BatchResult is the batch payload of a finished batch job.
type BatchResult struct {
	Points  []BatchPointResult `json:"points"`
	Summary BatchSummary       `json:"summary"`
}

// BatchPointView is one point's row in a batch snapshot.
type BatchPointView struct {
	Index        int    `json:"index"`
	RequiredGain int64  `json:"requiredGain"`
	Key          string `json:"key"`
	Done         bool   `json:"done"`
	Disposition  string `json:"disposition"`
	Status       string `json:"status,omitempty"`
	Error        string `json:"error,omitempty"`
	// Node names the peer that solved (or, while leased, holds) a
	// remotely-dispatched point.
	Node string `json:"node,omitempty"`
}

// BatchView is the JSON snapshot served by the batch endpoints.
type BatchView struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status Status `json:"status"`
	Total  int    `json:"total"`
	// Remaining counts points not yet terminal.
	Remaining int `json:"remaining"`
	// LastEventID is the newest event in the batch's log; streams resume
	// from any earlier ID.
	LastEventID uint64     `json:"lastEventId"`
	Recovered   bool       `json:"recovered,omitempty"`
	SubmittedAt time.Time  `json:"submittedAt"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	Summary     *BatchSummary    `json:"summary,omitempty"`
	Points      []BatchPointView `json:"points,omitempty"`
}

// batchPoint is one point's runtime state.
type batchPoint struct {
	spec JobSpec
	key  string
	// dup is the index of the earlier identical point this one mirrors
	// (-1 for primaries).
	dup         int
	done        bool
	disposition string
	sel         *SelectionResult
	errMsg      string
	memoized    bool
	// node names the peer holding the point's dispatch lease while in
	// flight, then the peer that solved it (empty for local points).
	node string
}

// Batch is one tracked batch submission. Point state and the event log
// are guarded by mu; the event log is append-only and consumers resume
// from any event ID (see stream.go).
type Batch struct {
	ID  string
	Key string
	// job is the queued batch job carrying the pending points through
	// the worker pool (nil when every point was answered at submit).
	job *Job

	spec      BatchSpec
	recovered bool

	mu        sync.Mutex
	points    []*batchPoint
	remaining int
	status    Status
	submitted time.Time
	finished  time.Time
	draining  bool
	events    []BatchEvent
	notify    chan struct{}
	// pointRecs are the journaled per-point completion records still
	// live for compaction while the batch is unfinished (the terminal
	// done record retires them; see Job.liveRecords).
	pointRecs map[int]journal.Record
}

// setPointRecord remembers one settled point's journal record for
// compaction while the batch is unfinished.
func (b *Batch) setPointRecord(idx int, rec journal.Record) {
	b.mu.Lock()
	if b.pointRecs == nil {
		b.pointRecs = map[int]journal.Record{}
	}
	b.pointRecs[idx] = rec
	b.mu.Unlock()
}

// pointRecords snapshots the live per-point records in index order.
func (b *Batch) pointRecords() []journal.Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pointRecs) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(b.pointRecs))
	for i := range b.pointRecs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]journal.Record, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, b.pointRecs[i])
	}
	return out
}

// View snapshots the batch. withPoints includes the per-point rows
// (lists omit them; a batch can hold thousands of points).
func (b *Batch) View(withPoints bool) BatchView {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := BatchView{
		ID:          b.ID,
		Key:         b.Key,
		Status:      b.status,
		Total:       len(b.points),
		Remaining:   b.remaining,
		LastEventID: uint64(len(b.events)),
		Recovered:   b.recovered,
		SubmittedAt: b.submitted,
	}
	if !b.finished.IsZero() {
		t := b.finished
		v.FinishedAt = &t
	}
	if b.status == StatusDone {
		s := b.summaryLocked()
		v.Summary = &s
	}
	if withPoints {
		v.Points = make([]BatchPointView, len(b.points))
		for i, p := range b.points {
			pv := BatchPointView{
				Index:        i,
				RequiredGain: p.spec.RequiredGain,
				Key:          p.key,
				Done:         p.done,
				Disposition:  p.disposition,
				Error:        p.errMsg,
				Node:         p.node,
			}
			if p.sel != nil {
				pv.Status = p.sel.Status
			}
			v.Points[i] = pv
		}
	}
	return v
}

// Done reports whether every point is terminal.
func (b *Batch) Done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.status == StatusDone
}

// summaryLocked tallies dispositions; callers hold b.mu.
func (b *Batch) summaryLocked() BatchSummary {
	s := BatchSummary{Total: len(b.points), Draining: b.draining}
	for _, p := range b.points {
		switch p.disposition {
		case DispositionCached:
			s.Cached++
		case DispositionCoalesced:
			s.Coalesced++
		case DispositionDuplicate:
			s.Duplicates++
		case DispositionSolved:
			s.Solved++
		case DispositionReused:
			s.Reused++
		case DispositionRemote:
			s.Remote++
		case DispositionFailed:
			s.Failed++
		}
	}
	if !b.finished.IsZero() {
		s.ElapsedMs = b.finished.Sub(b.submitted).Milliseconds()
	}
	return s
}

// result assembles the batch job's result payload.
func (b *Batch) result() *BatchResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := &BatchResult{Summary: b.summaryLocked()}
	out.Points = make([]BatchPointResult, len(b.points))
	for i, p := range b.points {
		out.Points[i] = BatchPointResult{
			Index:        i,
			RequiredGain: p.spec.RequiredGain,
			Key:          p.key,
			Disposition:  p.disposition,
			Selection:    p.sel,
			Error:        p.errMsg,
			Memoized:     p.memoized,
			Node:         p.node,
		}
	}
	return out
}

// batchKey is the batch's own content address: the ordered list of its
// point keys. Identical in-flight batches coalesce on it.
func batchKey(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return "b:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// SubmitBatch validates, content-addresses, dedupes, and admits one
// batch. Cached points complete immediately; an identical in-flight
// batch is returned instead of a new one (batch-level coalescing);
// points identical to an in-flight single job attach to it. The rest is
// journaled and enqueued as one batch job. Errors: ErrBatchTooLarge
// (413), *BatchPointError (400, names the offending index), ErrDraining
// and ErrQueueFull (503/429 back-pressure).
func (s *Server) SubmitBatch(spec BatchSpec) (*Batch, error) {
	if len(spec.Points) == 0 {
		return nil, errors.New("service: batch has no points")
	}
	if len(spec.Points) > s.cfg.MaxBatchPoints {
		return nil, fmt.Errorf("%w: %d points > %d", ErrBatchTooLarge, len(spec.Points), s.cfg.MaxBatchPoints)
	}
	if spec.Defaults.Kind != "" && spec.Defaults.Kind != KindSelect {
		return nil, fmt.Errorf("service: batch defaults kind must be empty or %q, got %q", KindSelect, spec.Defaults.Kind)
	}
	if len(spec.Defaults.PerPath) > 0 {
		return nil, errors.New("service: batch defaults must not set perPath")
	}
	if s.draining.Load() {
		s.metrics.JobRejected()
		return nil, ErrDraining
	}

	pts := make([]*batchPoint, len(spec.Points))
	keys := make([]string, len(spec.Points))
	firstByKey := map[string]int{}
	for i := range spec.Points {
		merged, err := spec.point(i)
		if err != nil {
			return nil, &BatchPointError{Index: i, Err: err}
		}
		key, err := merged.resultKey()
		if err != nil {
			return nil, &BatchPointError{Index: i, Err: err}
		}
		keys[i] = key
		pts[i] = &batchPoint{spec: merged, key: key, dup: -1, disposition: DispositionPending}
		if first, ok := firstByKey[key]; ok {
			pts[i].dup = first
		} else {
			firstByKey[key] = i
		}
	}
	bkey := batchKey(keys)

	s.mu.Lock()
	if prev, ok := s.inflightBatches[bkey]; ok {
		s.mu.Unlock()
		s.metrics.JobCoalesced()
		return prev, nil
	}
	s.mu.Unlock()

	now := s.now()
	b := &Batch{
		ID:        s.newBatchID(),
		Key:       bkey,
		spec:      spec,
		points:    pts,
		remaining: len(pts),
		status:    StatusQueued,
		submitted: now,
		notify:    make(chan struct{}),
	}

	// Dedupe pass: duplicates mirror their primary (completed when it
	// completes), cached points finish now, in-flight single jobs are
	// coalesced onto.
	var waiters []func()
	pending := 0
	for i, p := range b.points {
		if p.dup >= 0 {
			continue // settled when its primary settles
		}
		if v, ok := s.results.Get(p.key); ok {
			s.completeBatchPoint(b, i, DispositionCached, selectionOf(v.(*JobResult)), "", false)
			continue
		}
		s.mu.Lock()
		prev, ok := s.inflight[p.key]
		s.mu.Unlock()
		if ok && prev.Spec.Kind == KindSelect {
			s.metrics.JobCoalesced()
			// Marking the disposition now (point not yet done) keeps the
			// batch executor's hands off it: the waiter settles it when
			// the job it attached to finishes.
			p.disposition = DispositionCoalesced
			idx := i
			waiters = append(waiters, func() { s.adoptJobResult(b, idx, prev) })
			continue
		}
		pending++
	}

	if b.allSettledButWaiters(len(waiters)) && len(waiters) == 0 {
		// Every primary was answered from the cache: the batch completes
		// at submit, like a cache-hit job.
		s.finalizeBatchIfDone(b)
		s.trackBatch(b)
		s.journalAppend(batchJournalJob(b), recSubmit, submitData{ID: b.ID, Key: b.Key, Batch: &spec})
		s.journalAppend(batchJournalJob(b), recDone, doneData{Result: &JobResult{Kind: KindBatch, Batch: b.result()}, Cached: true, Outcome: "cached"})
		s.metrics.BatchSubmitted(len(b.points))
		return b, nil
	}

	// Admission: the whole batch takes one queue slot.
	s.mu.Lock()
	if s.queued >= cap(s.queue) {
		s.mu.Unlock()
		s.metrics.JobRejected()
		return nil, ErrQueueFull
	}
	job := &Job{
		ID:        b.ID,
		Spec:      JobSpec{Kind: KindBatch},
		Key:       bkey,
		batch:     b,
		doneCh:    make(chan struct{}),
		status:    StatusQueued,
		submitted: now,
	}
	b.job = job
	s.inflightBatches[bkey] = b
	s.queued++
	s.mu.Unlock()
	s.jobWG.Add(1)
	s.track(job)
	s.trackBatch(b)
	// Durably accepted once this append syncs; the 202 follows it.
	s.journalAppend(job, recSubmit, submitData{ID: b.ID, Key: b.Key, Batch: &spec})
	s.metrics.BatchSubmitted(len(b.points))
	s.queue <- job
	// Coalesced waiters attach after the batch is fully admitted so a
	// fast job completion cannot finalize the batch mid-setup.
	for _, w := range waiters {
		go w()
	}
	return b, nil
}

// allSettledButWaiters reports whether the batch has no work left for
// the queue: every primary point is terminal except the coalesced ones.
func (b *Batch) allSettledButWaiters(waiters int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining == waiters
}

// selectionOf extracts the selection payload of a cached select result.
func selectionOf(res *JobResult) *SelectionResult {
	if res == nil {
		return nil
	}
	return res.Selection
}

// adoptJobResult settles a coalesced point when its in-flight job
// reaches a terminal state.
func (s *Server) adoptJobResult(b *Batch, i int, job *Job) {
	<-job.DoneCh()
	if res := job.Result(); res != nil {
		s.completeBatchPoint(b, i, DispositionCoalesced, selectionOf(res), "", false)
		return
	}
	msg := "coalesced job failed"
	job.mu.Lock()
	if job.errMsg != "" {
		msg = job.errMsg
	}
	job.mu.Unlock()
	s.completeBatchPoint(b, i, DispositionFailed, nil, msg, false)
}

// newBatchID allocates the next batch ID, node-prefixed in cluster
// mode like job IDs.
func (s *Server) newBatchID() string {
	n := s.batchSeq.Add(1)
	if s.cfg.NodeName != "" {
		return fmt.Sprintf("%s-b%06d", s.cfg.NodeName, n)
	}
	return fmt.Sprintf("b%06d", n)
}

// Batch returns a tracked batch by ID.
func (s *Server) Batch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// trackBatch retains the batch for polling/streaming, evicting the
// oldest finished batches beyond the retention bound.
func (s *Server) trackBatch(b *Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	if len(s.batchOrder) <= s.cfg.MaxBatches {
		return
	}
	kept := s.batchOrder[:0]
	excess := len(s.batchOrder) - s.cfg.MaxBatches
	for _, id := range s.batchOrder {
		if excess > 0 && s.batches[id].Done() {
			delete(s.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.batchOrder = kept
}

// completeBatchPoint settles point i (and every duplicate mirroring
// it), emits its point event, and finalizes the batch when it was the
// last. memoize admits the point's result to the result cache under its
// own select-job key, so later single submits and batch resubmits are
// answered without solving.
func (s *Server) completeBatchPoint(b *Batch, i int, disposition string, sel *SelectionResult, errMsg string, memoize bool) {
	if memoize && sel != nil && !s.draining.Load() {
		s.results.Put(b.points[i].key, &JobResult{Kind: KindSelect, Selection: sel})
	} else {
		memoize = false
	}
	b.mu.Lock()
	settle := func(idx int, disp string) {
		p := b.points[idx]
		if p.done {
			return
		}
		p.done = true
		p.disposition = disp
		p.sel = sel
		p.errMsg = errMsg
		p.memoized = memoize && disp != DispositionDuplicate
		b.remaining--
		s.metrics.BatchPointDone(disp)
		b.emitLocked(BatchEvent{
			Type:         EventPoint,
			Point:        idx,
			RequiredGain: p.spec.RequiredGain,
			Result: &BatchPointResult{
				Index:        idx,
				RequiredGain: p.spec.RequiredGain,
				Key:          p.key,
				Disposition:  disp,
				Selection:    sel,
				Error:        errMsg,
				Memoized:     p.memoized,
				Node:         p.node,
			},
		})
	}
	settle(i, disposition)
	for j := i + 1; j < len(b.points); j++ {
		if b.points[j].dup == i {
			settle(j, DispositionDuplicate)
		}
	}
	b.mu.Unlock()
	s.finalizeBatchIfDone(b)
}

// finalizeBatchIfDone emits the terminal summary event and completes
// the batch job once every point has settled. Safe to call from any
// goroutine; only the caller that observes the last settlement runs the
// finalization.
func (s *Server) finalizeBatchIfDone(b *Batch) {
	b.mu.Lock()
	if b.remaining != 0 || b.status == StatusDone {
		b.mu.Unlock()
		return
	}
	b.status = StatusDone
	b.finished = s.now()
	b.draining = b.draining || s.draining.Load()
	sum := b.summaryLocked()
	b.emitLocked(BatchEvent{Type: EventSummary, Point: -1, Summary: &sum})
	job := b.job
	b.mu.Unlock()

	s.metrics.BatchCompleted(sum)
	if job != nil {
		s.mu.Lock()
		delete(s.inflightBatches, b.Key)
		s.mu.Unlock()
		res := &JobResult{Kind: KindBatch, Batch: b.result()}
		job.complete(res, false, s.now())
		outcome := "optimal"
		if sum.Failed > 0 {
			outcome = "error"
		} else if sum.Draining {
			outcome = "degraded"
		}
		s.journalAppend(job, recDone, doneData{Result: res, Outcome: outcome})
		s.jobWG.Done()
	}
}

// batchJournalJob wraps a jobless (fully cached) batch in a throwaway
// Job so journalAppend can record it; the records are retired together
// at the next compaction through the job table — cached batches are
// tracked under their batch ID only, so their records are not live.
func batchJournalJob(b *Batch) *Job {
	return &Job{ID: b.ID, Key: b.Key}
}

// fanoutEnabled reports whether batch points may be ring-routed to
// remote peers: the flag plus both cluster hooks must be present.
func (s *Server) fanoutEnabled() bool {
	return s.cfg.BatchFanout && s.cfg.RoutePoint != nil && s.cfg.RemoteSolve != nil
}

// runBatch executes one batch job on a worker. Pending points are
// re-checked against the result cache (another batch or job may have
// answered them since submit), then routed: with fan-out enabled, each
// point whose ring owner is a live remote peer is dispatched there
// under a journaled lease, concurrently with the local pipeline that
// drives the rest. Any dispatch that fails — per-point timeout and
// retry budget spent, peer evicted, lease expired — requeues its point
// onto the local pipeline, so the local solver pool is always the last
// resort and a fully partitioned node still finishes its batch, only
// slower. The worker returns when every routed point is terminal;
// coalesced points may still be in flight on other workers, in which
// case their waiter goroutines finalize the batch.
func (s *Server) runBatch(job *Job) {
	b := job.batch
	s.busy.Add(1)
	defer s.busy.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			errMsg := fmt.Sprintf("service: batch worker panic: %v", r)
			b.mu.Lock()
			var open []int
			for i, p := range b.points {
				if !p.done && p.dup < 0 && p.disposition == DispositionPending {
					open = append(open, i)
				}
			}
			b.mu.Unlock()
			for _, i := range open {
				s.finishBatchPoint(job, i, DispositionFailed, nil, errMsg, false, "")
			}
			s.metrics.PanicRecovered()
		}
	}()
	job.setRunning(s.now())
	s.journalAppend(job, recRunning, nil)

	b.mu.Lock()
	pending := make([]int, 0, len(b.points))
	for i, p := range b.points {
		if !p.done && p.dup < 0 && p.disposition == DispositionPending {
			pending = append(pending, i)
		}
	}
	b.mu.Unlock()

	// Route: cache re-check first (a point solved since submit never
	// travels), then ring ownership by point key.
	fanout := s.fanoutEnabled()
	var local, remote []int
	var peers []string
	for _, i := range pending {
		p := b.points[i]
		if v, ok := s.results.Get(p.key); ok {
			s.finishBatchPoint(job, i, DispositionCached, selectionOf(v.(*JobResult)), "", false, "")
			continue
		}
		if fanout {
			if peer, ok := s.cfg.RoutePoint(p.key); ok {
				remote = append(remote, i)
				peers = append(peers, peer)
				continue
			}
		}
		local = append(local, i)
	}

	ctx, stop := withDrain(context.Background(), s.drain)
	defer stop()

	// Remote dispatch runs concurrently with the local pipeline, capped
	// by FanoutParallel; failed dispatches accumulate on the requeue
	// list and run locally after both finish.
	var wg sync.WaitGroup
	var rmu sync.Mutex
	var requeued []int
	if len(remote) > 0 {
		sem := make(chan struct{}, s.cfg.FanoutParallel)
		for k, i := range remote {
			wg.Add(1)
			go func(peer string, i int) {
				defer wg.Done()
				ok := false
				func() {
					// A panicking hook must cost one point's dispatch, not
					// the process: the point falls back to the local solve.
					defer func() {
						if r := recover(); r != nil {
							s.metrics.PanicRecovered()
						}
					}()
					sem <- struct{}{}
					defer func() { <-sem }()
					ok = s.solveRemote(ctx, job, peer, i)
				}()
				if !ok {
					rmu.Lock()
					requeued = append(requeued, i)
					rmu.Unlock()
				}
			}(peers[k], i)
		}
	}
	s.runBatchLocal(ctx, job, local)
	wg.Wait()
	sort.Ints(requeued)
	s.runBatchLocal(ctx, job, requeued)
	// Normally the last settling point finalized the batch (or coalesced
	// waiters will); a replayed batch whose every point was journaled
	// complete before the crash settles nothing here, so finalize
	// explicitly — the call is a no-op unless remaining is zero.
	s.finalizeBatchIfDone(b)
}

// runBatchLocal drives the given points through the local pipeline:
// grouped by program identity and budget, each group sharing one
// analysis and one sweep pipeline.
func (s *Server) runBatchLocal(ctx context.Context, job *Job, idxs []int) {
	if len(idxs) == 0 {
		return
	}
	b := job.batch
	type group struct {
		spec JobSpec // representative (program + budget fields)
		idxs []int
	}
	groups := map[string]*group{}
	var order []string
	for _, i := range idxs {
		p := b.points[i]
		// A point answered while it waited — another batch, a single
		// job, or a remote completion that was memoized before this
		// point was requeued — is served from the cache.
		if v, ok := s.results.Get(p.key); ok {
			s.finishBatchPoint(job, i, DispositionCached, selectionOf(v.(*JobResult)), "", false, "")
			continue
		}
		dk, err := p.spec.designKey()
		if err != nil {
			s.finishBatchPoint(job, i, DispositionFailed, nil, err.Error(), false, "")
			continue
		}
		gk := fmt.Sprintf("%s|t%d|n%d|p%d", dk, p.spec.TimeoutMs, p.spec.MaxNodes, p.spec.Parallelism)
		g, ok := groups[gk]
		if !ok {
			g = &group{spec: p.spec}
			groups[gk] = g
			order = append(order, gk)
		}
		g.idxs = append(g.idxs, i)
	}
	for _, gk := range order {
		s.runBatchGroup(ctx, job, groups[gk].spec, groups[gk].idxs)
	}
}

// solveRemote executes one ring-routed point on its owner under a
// journaled lease. The lease record names the point, the assignee, and
// the deadline; it is advisory (replay reconstructs a leased point as
// pending) and bounds the dispatch end to end. Returns false when the
// point must requeue locally.
func (s *Server) solveRemote(ctx context.Context, job *Job, peer string, i int) bool {
	b := job.batch
	p := b.points[i]
	deadline := s.now().Add(s.cfg.BatchLease)
	b.mu.Lock()
	p.node = peer
	b.mu.Unlock()
	s.journalAppend(job, recLease, leaseData{Index: i, Key: p.key, Peer: peer, Deadline: deadline})
	lctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	res, retries, err := s.cfg.RemoteSolve(lctx, peer, p.spec)
	s.metrics.RemotePointRetries(retries)
	if err == nil && (res == nil || res.Selection == nil) {
		err = errors.New("service: remote solve returned no selection")
	}
	if err != nil {
		// Lease expiry is the deadline case specifically — not a drain,
		// whose cancellation also surfaces here.
		if lctx.Err() != nil && ctx.Err() == nil {
			s.metrics.LeaseExpired()
		}
		s.metrics.RemotePointDone("requeued")
		b.mu.Lock()
		p.node = ""
		b.mu.Unlock()
		return false
	}
	sel := res.Selection
	// Remote results are memoized only when proven: the peer solved
	// under its own clamping (and the lease budget), so an anytime
	// incumbent from over there must not answer full-budget requests
	// under this content address. Proofs are budget-independent.
	s.finishBatchPoint(job, i, DispositionRemote, sel, "", provenSelection(sel), peer)
	s.metrics.RemotePointDone("completed")
	return true
}

// finishBatchPoint settles point i with its terminal disposition,
// journaling the completion first (WAL order: record, then apply) so a
// crash between the two re-plays the point as done rather than
// re-solving it.
func (s *Server) finishBatchPoint(job *Job, i int, disposition string, sel *SelectionResult, errMsg string, memoize bool, node string) {
	b := job.batch
	// Mirror completeBatchPoint's memoize rules so the journaled record
	// matches what the cache will hold after replay.
	memoize = memoize && sel != nil && !s.draining.Load()
	b.mu.Lock()
	p := b.points[i]
	p.node = node
	key, rg := p.key, p.spec.RequiredGain
	b.mu.Unlock()
	s.journalAppendPoint(job, i, pointData{Result: BatchPointResult{
		Index:        i,
		RequiredGain: rg,
		Key:          key,
		Disposition:  disposition,
		Selection:    sel,
		Error:        errMsg,
		Memoized:     memoize,
		Node:         node,
	}})
	s.completeBatchPoint(b, i, disposition, sel, errMsg, memoize)
}

// runBatchGroup solves one program's points through a shared-analysis
// pipeline, ascending by required gain so plateau reuse and
// infeasibility propagation fire as often as possible.
func (s *Server) runBatchGroup(ctx context.Context, job *Job, spec JobSpec, idxs []int) {
	b := job.batch
	design, err := s.design(spec)
	if err != nil {
		for _, i := range idxs {
			s.finishBatchPoint(job, i, DispositionFailed, nil, err.Error(), false, "")
		}
		return
	}
	sort.Slice(idxs, func(a, c int) bool {
		if b.points[idxs[a]].spec.RequiredGain != b.points[idxs[c]].spec.RequiredGain {
			return b.points[idxs[a]].spec.RequiredGain < b.points[idxs[c]].spec.RequiredGain
		}
		return idxs[a] < idxs[c]
	})
	gains := make([]int64, len(idxs))
	for k, i := range idxs {
		gains[k] = b.points[i].spec.RequiredGain
	}
	bud := partita.Budget{MaxNodes: spec.MaxNodes, Parallelism: spec.Parallelism}
	if bud.Parallelism > s.cfg.MaxParallelism {
		bud.Parallelism = s.cfg.MaxParallelism
	}
	timeout := s.jobTimeout(spec)
	jobObserve := s.observeJob(job)
	pl := design.NewSweepPipeline(gains, bud, func(k int, inc partita.Incumbent) {
		// Stream the incumbent as a per-point progress event — the same
		// anytime event the single-job poll surface reports — and fold
		// it into the batch job's own snapshot/checkpoint path.
		b.emitProgress(idxs[k], b.points[idxs[k]].spec.RequiredGain, inc)
		jobObserve(inc)
	})
	for {
		pctx, cancel := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			pctx, cancel = context.WithTimeout(ctx, timeout)
		}
		pt, ok, err := pl.Next(pctx)
		cancel()
		if !ok {
			return
		}
		i := idxs[pt.Index]
		if err != nil {
			s.finishBatchPoint(job, i, DispositionFailed, nil, err.Error(), false, "")
			continue
		}
		disp := DispositionSolved
		if pt.Reused {
			disp = DispositionReused
		} else {
			s.metrics.SolveStarted()
		}
		s.finishBatchPoint(job, i, disp, NewSelectionResult(pt.Sel), "", true, "")
	}
}

// jobTimeout resolves one point's solve deadline under the server's
// default and cap — the same clamping execute applies to single jobs.
func (s *Server) jobTimeout(spec JobSpec) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMs > 0 {
		timeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}
