package service

import (
	"math"

	"partita"
	"partita/internal/ilp"
	"partita/internal/selector"
)

// SelectionResult is the wire form of a solved selection. It is the one
// schema shared by the partitad job API and the partita CLI's -json
// mode, so results are comparable byte-for-byte across both entry
// points.
type SelectionResult struct {
	// Status is optimal, feasible, infeasible, or unbounded; feasible
	// marks an anytime incumbent (see Gap) and Degraded, when non-empty,
	// names the exhausted budget that forced a heuristic fallback.
	Status   string  `json:"status"`
	Degraded string  `json:"degraded,omitempty"`
	Area     float64 `json:"area"`
	Gain     int64   `json:"gain"`
	// Gap is the relative optimality gap of a feasible (anytime) result;
	// 0 for optimal results, -1 when no finite bound is known.
	Gap               float64     `json:"gap"`
	SInstructions     int         `json:"sInstructions"`
	SCallsImplemented int         `json:"sCallsImplemented"`
	Nodes             int         `json:"nodes"`
	PathGains         []int64     `json:"pathGains,omitempty"`
	Chosen            []ChosenIMP `json:"chosen,omitempty"`
	// Portfolio carries the per-engine attribution of a portfolio-mode
	// solve (nil for plain exact solves).
	Portfolio *PortfolioInfo `json:"portfolio,omitempty"`
}

// PortfolioInfo is the per-engine attribution of a portfolio race: who
// won the race to the first acceptable answer, who produced the settled
// result, and whether the exact proof confirmed the fast answer.
type PortfolioInfo struct {
	// Engine produced the settled selection (seed, capacity, greedy,
	// lpround, exact).
	Engine string `json:"engine"`
	// Gap is the settled proven relative area gap (0 when proven, -1
	// when no finite bound is known).
	Gap float64 `json:"gap"`
	// FirstEngine/FirstArea/FirstGap describe the first acceptable
	// answer delivered during the race.
	FirstEngine string  `json:"firstEngine"`
	FirstArea   float64 `json:"firstArea"`
	FirstGap    float64 `json:"firstGap"`
	// FirstMs and SettleMs are the times from race start to the first
	// acceptable answer and to the settled result, in milliseconds.
	FirstMs  float64 `json:"firstMs"`
	SettleMs float64 `json:"settleMs"`
	// Confirmed reports that the race settled with a proof agreeing
	// with the first answer.
	Confirmed bool `json:"confirmed"`
	// Seeded reports a warm-started incremental re-solve.
	Seeded bool `json:"seeded,omitempty"`
}

// NewPortfolioSelectionResult flattens a portfolio race outcome into
// the wire schema: the settled selection plus per-engine attribution.
func NewPortfolioSelectionResult(r *partita.PortfolioResult) *SelectionResult {
	if r == nil {
		return nil
	}
	out := NewSelectionResult(r.Sel)
	if out == nil {
		return nil
	}
	gap := r.Gap
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		gap = -1
	}
	firstGap := r.FirstGap
	if math.IsInf(firstGap, 0) || math.IsNaN(firstGap) {
		firstGap = -1
	}
	info := &PortfolioInfo{
		Engine:      string(r.Engine),
		Gap:         gap,
		FirstEngine: string(r.FirstEngine),
		FirstGap:    firstGap,
		FirstMs:     float64(r.First.Microseconds()) / 1e3,
		SettleMs:    float64(r.Settled.Microseconds()) / 1e3,
		Confirmed:   r.Confirmed,
		Seeded:      r.Seeded,
	}
	if r.FirstSel != nil {
		info.FirstArea = r.FirstSel.Area
	}
	out.Portfolio = info
	return out
}

// ChosenIMP is one selected implementation method.
type ChosenIMP struct {
	ID          string  `json:"id"`
	SCall       string  `json:"sCall"`
	Func        string  `json:"func"`
	IP          string  `json:"ip"`
	Interface   string  `json:"interface"`
	GainPerExec int64   `json:"gainPerExec"`
	TotalGain   int64   `json:"totalGain"`
	IfaceArea   float64 `json:"ifaceArea"`
	UsesPC      bool    `json:"usesPC,omitempty"`
	Flattened   string  `json:"flattened,omitempty"`
}

// NewSelectionResult flattens a Selection into the wire schema.
func NewSelectionResult(sel *partita.Selection) *SelectionResult {
	if sel == nil {
		return nil
	}
	gap := sel.Gap
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		gap = -1
	}
	out := &SelectionResult{
		Status:            sel.Status.String(),
		Degraded:          sel.Degraded,
		Area:              sel.Area,
		Gain:              sel.Gain,
		Gap:               gap,
		SInstructions:     sel.SInstructions,
		SCallsImplemented: sel.SCallsImplemented,
		Nodes:             sel.Nodes,
		PathGains:         sel.PathGains,
	}
	for _, m := range sel.Chosen {
		out.Chosen = append(out.Chosen, ChosenIMP{
			ID:          m.ID,
			SCall:       m.SC.Name(),
			Func:        m.SC.Func,
			IP:          m.IP.ID,
			Interface:   m.Cand.Type.String(),
			GainPerExec: m.GainPerExec,
			TotalGain:   m.TotalGain,
			IfaceArea:   m.IfaceArea,
			UsesPC:      m.UsesPC,
			Flattened:   m.Flattened,
		})
	}
	return out
}

// Outcome classifies a selection for the completion metrics: degraded,
// optimal, feasible, infeasible, or unbounded.
func Outcome(sel *partita.Selection) string {
	switch {
	case sel == nil:
		return "error"
	case sel.Degraded != "":
		return "degraded"
	default:
		return sel.Status.String()
	}
}

// SCallInfo is one s-call candidate row of an analysis result.
type SCallInfo struct {
	Name      string `json:"name"`
	Func      string `json:"func"`
	Sites     int    `json:"sites"`
	TotalFreq int64  `json:"totalFreq"`
	TSW       int64  `json:"tSW"`
}

// AnalyzeResult summarizes a built design.
type AnalyzeResult struct {
	Root             string      `json:"root"`
	SCalls           []SCallInfo `json:"sCalls"`
	IMPs             int         `json:"imps"`
	Paths            int         `json:"paths"`
	MaxReachableGain int64       `json:"maxReachableGain"`
}

// NewAnalyzeResult summarizes a design in the wire schema.
func NewAnalyzeResult(d *partita.Design) *AnalyzeResult {
	out := &AnalyzeResult{
		Root:             d.Root,
		IMPs:             len(d.DB.IMPs),
		Paths:            len(d.DB.Paths),
		MaxReachableGain: selector.MaxReachableGain(d.DB),
	}
	for _, sc := range d.DB.SCalls {
		out.SCalls = append(out.SCalls, SCallInfo{
			Name: sc.Name(), Func: sc.Func, Sites: len(sc.Sites),
			TotalFreq: sc.TotalFreq, TSW: sc.TSW,
		})
	}
	return out
}

// SweepPointResult is one solved point of a design-space sweep.
type SweepPointResult struct {
	RequiredGain int64            `json:"requiredGain"`
	Selection    *SelectionResult `json:"selection"`
}

// NewSweepResult flattens a sweep into the wire schema.
func NewSweepResult(pts []partita.SweepPoint) []SweepPointResult {
	out := make([]SweepPointResult, 0, len(pts))
	for _, p := range pts {
		out = append(out, SweepPointResult{RequiredGain: p.Required, Selection: NewSelectionResult(p.Sel)})
	}
	return out
}

// Solved reports whether a selection result carries a usable
// configuration (optimal or anytime-feasible, possibly degraded).
func (r *SelectionResult) Solved() bool {
	return r != nil && (r.Status == ilp.Optimal.String() || r.Status == ilp.Feasible.String())
}

// provenOutcome reports whether a completion outcome is a proof —
// optimal or infeasible — rather than an anytime incumbent or a
// degraded fallback. Only proven outcomes are safe to memoize from a
// budget-clamped solve: the clamp shrinks the time the solver got, so
// anything short of a proof may differ from what the full budget would
// have produced under the same content address.
func provenOutcome(outcome string) bool {
	return outcome == ilp.Optimal.String() || outcome == ilp.Infeasible.String()
}

// provenSelection is provenOutcome over a wire-form selection: a
// proven status with no degraded fallback.
func provenSelection(sel *SelectionResult) bool {
	return sel != nil && sel.Degraded == "" && provenOutcome(sel.Status)
}
