package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// solveBuckets are the latency histogram bucket upper bounds in seconds.
// They span sub-millisecond cache-adjacent solves up to the deadline
// regime where jobs degrade to anytime incumbents.
var solveBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// fsyncBuckets are the journal fsync latency buckets in seconds: from
// page-cache-speed flushes to spinning-rust outliers.
var fsyncBuckets = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5}

// Metrics accumulates the daemon's counters and the solve-latency
// histogram. Gauges (queue depth, busy workers, cache sizes) are
// sampled from the live server at render time instead of being stored.
type Metrics struct {
	mu        sync.Mutex
	submitted map[string]uint64 // by job kind
	completed map[string]uint64 // by outcome: optimal|feasible|degraded|infeasible|error
	rejected  uint64
	coalesced uint64
	bucketN   []uint64
	solveSum  float64
	solveN    uint64

	// Crash-safety and fault-injection counters.
	journalErrors uint64
	panics        uint64
	// solvesStarted counts jobs that actually entered a solve — cache
	// hits (local or peer) never increment it, which is what lets the
	// cluster chaos harness assert "served without re-solving".
	solvesStarted uint64
	fsyncBucketN  []uint64
	fsyncSum      float64
	fsyncN        uint64
	replay        RecoveryStats

	// Batch API counters (see batch.go / stream.go).
	batchesSubmitted uint64
	batchesCompleted uint64
	batchPointsIn    uint64
	batchPoints      map[string]uint64 // by disposition
	streamEvents     uint64

	// Batch fan-out counters: remote point dispatches by outcome
	// (completed, requeued), retry attempts spent, and leases that
	// expired before the peer answered.
	remotePoints  map[string]uint64 // by outcome
	remoteRetries uint64
	leaseExpired  uint64

	// Portfolio-mode counters: race wins by engine, and the
	// time-to-first-acceptable histogram.
	portfolioWins    map[string]uint64 // by engine: seed|capacity|greedy|lpround|exact
	portfolioBucketN []uint64
	portfolioSum     float64
	portfolioN       uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		submitted:        map[string]uint64{},
		completed:        map[string]uint64{},
		batchPoints:      map[string]uint64{},
		remotePoints:     map[string]uint64{},
		portfolioWins:    map[string]uint64{},
		bucketN:          make([]uint64, len(solveBuckets)),
		fsyncBucketN:     make([]uint64, len(fsyncBuckets)),
		portfolioBucketN: make([]uint64, len(solveBuckets)),
	}
}

// JournalError counts one failed journal append or compaction.
func (m *Metrics) JournalError() {
	m.mu.Lock()
	m.journalErrors++
	m.mu.Unlock()
}

// PanicRecovered counts one worker panic contained by the pool.
func (m *Metrics) PanicRecovered() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// FsyncObserved records one journal fsync latency.
func (m *Metrics) FsyncObserved(d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	for i, ub := range fsyncBuckets {
		if secs <= ub {
			m.fsyncBucketN[i]++
		}
	}
	m.fsyncSum += secs
	m.fsyncN++
	m.mu.Unlock()
}

// ReplayDone records the startup recovery stats rendered on /metrics.
func (m *Metrics) ReplayDone(r RecoveryStats) {
	m.mu.Lock()
	m.replay = r
	m.mu.Unlock()
}

// SolveStarted counts one job entering an actual solve (not answered
// from any cache).
func (m *Metrics) SolveStarted() {
	m.mu.Lock()
	m.solvesStarted++
	m.mu.Unlock()
}

// BatchSubmitted counts one accepted batch and its point count.
func (m *Metrics) BatchSubmitted(points int) {
	m.mu.Lock()
	m.batchesSubmitted++
	m.batchPointsIn += uint64(points)
	m.mu.Unlock()
}

// BatchPointDone counts one settled batch point by disposition
// (cached, coalesced, duplicate, solved, reused, failed).
func (m *Metrics) BatchPointDone(disposition string) {
	m.mu.Lock()
	m.batchPoints[disposition]++
	m.mu.Unlock()
}

// RemotePointDone counts one ring-routed batch point dispatch reaching
// its outcome: completed (the peer's result settled the point) or
// requeued (the point fell back to the local pipeline).
func (m *Metrics) RemotePointDone(outcome string) {
	m.mu.Lock()
	m.remotePoints[outcome]++
	m.mu.Unlock()
}

// RemotePointRetries adds the retry attempts one remote dispatch spent
// beyond its first try.
func (m *Metrics) RemotePointRetries(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.remoteRetries += uint64(n)
	m.mu.Unlock()
}

// LeaseExpired counts one point lease that hit its deadline before the
// assignee answered.
func (m *Metrics) LeaseExpired() {
	m.mu.Lock()
	m.leaseExpired++
	m.mu.Unlock()
}

// BatchCompleted counts one batch reaching its terminal summary.
func (m *Metrics) BatchCompleted(BatchSummary) {
	m.mu.Lock()
	m.batchesCompleted++
	m.mu.Unlock()
}

// EventDelivered counts one batch event delivered to a consumer — an SSE
// frame written or a long-poll page entry returned. A resumed stream
// re-delivers, so this can exceed the sum of event-log lengths.
func (m *Metrics) EventDelivered() {
	m.mu.Lock()
	m.streamEvents++
	m.mu.Unlock()
}

// PortfolioWin counts one race won (first acceptable answer delivered)
// by the given engine, and records the time to that answer in the
// first-acceptable latency histogram.
func (m *Metrics) PortfolioWin(engine string, seconds float64) {
	m.mu.Lock()
	m.portfolioWins[engine]++
	for i, ub := range solveBuckets {
		if seconds <= ub {
			m.portfolioBucketN[i]++
		}
	}
	m.portfolioSum += seconds
	m.portfolioN++
	m.mu.Unlock()
}

// JobSubmitted counts one accepted submission of the given kind.
func (m *Metrics) JobSubmitted(kind string) {
	m.mu.Lock()
	m.submitted[kind]++
	m.mu.Unlock()
}

// JobRejected counts one admission-control rejection (full queue or
// draining server).
func (m *Metrics) JobRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// JobCoalesced counts one submission that attached to an identical
// in-flight job instead of enqueuing a duplicate.
func (m *Metrics) JobCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

// JobCompleted counts one finished job by outcome and records its solve
// wall time in the latency histogram.
func (m *Metrics) JobCompleted(outcome string, seconds float64) {
	m.mu.Lock()
	m.completed[outcome]++
	for i, ub := range solveBuckets {
		if seconds <= ub {
			m.bucketN[i]++
		}
	}
	m.solveSum += seconds
	m.solveN++
	m.mu.Unlock()
}

// Gauges carries the point-in-time values the server samples when
// rendering /metrics.
type Gauges struct {
	Workers     int
	WorkersBusy int
	QueueDepth  int
	Draining    bool
	Ready       bool
	JobsTracked int
	// JournalEnabled, JournalCompactions, and JournalDegraded are
	// sampled from the attached journal (zero when journaling is off).
	JournalEnabled     bool
	JournalCompactions uint64
	JournalDegraded    bool
	// FaultCounts snapshots the injector's fired-fault counters by
	// point name (nil when injection is disabled).
	FaultCounts map[string]uint64
	// BatchesTracked and StreamsActive are the batch API gauges.
	BatchesTracked int
	StreamsActive  int
}

// cacheStat is one cache's identity and counters for rendering.
type cacheStat struct {
	name         string
	hits, misses uint64
	entries      int
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (text/plain; version=0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges, caches []cacheStat) {
	m.mu.Lock()
	defer m.mu.Unlock()

	writeMap := func(name, help, label string, vals map[string]uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	}
	writeMap("partitad_jobs_submitted_total", "Jobs accepted, by kind.", "kind", m.submitted)
	writeMap("partitad_jobs_completed_total", "Jobs finished, by outcome.", "outcome", m.completed)
	fmt.Fprintf(w, "# HELP partitad_jobs_rejected_total Submissions rejected by admission control.\n# TYPE partitad_jobs_rejected_total counter\npartitad_jobs_rejected_total %d\n", m.rejected)
	fmt.Fprintf(w, "# HELP partitad_solves_started_total Jobs that entered an actual solve (cache hits excluded).\n# TYPE partitad_solves_started_total counter\npartitad_solves_started_total %d\n", m.solvesStarted)
	fmt.Fprintf(w, "# HELP partitad_jobs_coalesced_total Submissions attached to an identical in-flight job.\n# TYPE partitad_jobs_coalesced_total counter\npartitad_jobs_coalesced_total %d\n", m.coalesced)

	fmt.Fprintf(w, "# HELP partitad_batches_submitted_total Batches accepted on /v1/batches.\n# TYPE partitad_batches_submitted_total counter\npartitad_batches_submitted_total %d\n", m.batchesSubmitted)
	fmt.Fprintf(w, "# HELP partitad_batches_completed_total Batches that reached their terminal summary.\n# TYPE partitad_batches_completed_total counter\npartitad_batches_completed_total %d\n", m.batchesCompleted)
	fmt.Fprintf(w, "# HELP partitad_batch_points_submitted_total Points carried by accepted batches.\n# TYPE partitad_batch_points_submitted_total counter\npartitad_batch_points_submitted_total %d\n", m.batchPointsIn)
	writeMap("partitad_batch_points_total", "Settled batch points, by disposition.", "disposition", m.batchPoints)
	writeMap("partitad_batch_remote_points_total", "Batch points dispatched to ring peers, by outcome.", "outcome", m.remotePoints)
	fmt.Fprintf(w, "# HELP partitad_batch_remote_retries_total Retry attempts spent on remote batch-point dispatches.\n# TYPE partitad_batch_remote_retries_total counter\npartitad_batch_remote_retries_total %d\n", m.remoteRetries)
	fmt.Fprintf(w, "# HELP partitad_batch_lease_expired_total Point leases that expired before the assignee answered.\n# TYPE partitad_batch_lease_expired_total counter\npartitad_batch_lease_expired_total %d\n", m.leaseExpired)
	fmt.Fprintf(w, "# HELP partitad_batch_events_delivered_total Batch events delivered to SSE and long-poll consumers (resumes re-deliver).\n# TYPE partitad_batch_events_delivered_total counter\npartitad_batch_events_delivered_total %d\n", m.streamEvents)
	fmt.Fprintf(w, "# HELP partitad_batches_tracked Batches retained for polling and streaming.\n# TYPE partitad_batches_tracked gauge\npartitad_batches_tracked %d\n", g.BatchesTracked)
	fmt.Fprintf(w, "# HELP partitad_batch_streams_active Live SSE event streams.\n# TYPE partitad_batch_streams_active gauge\npartitad_batch_streams_active %d\n", g.StreamsActive)

	fmt.Fprintf(w, "# HELP partitad_cache_hits_total Cache hits, by cache.\n# TYPE partitad_cache_hits_total counter\n")
	for _, c := range caches {
		fmt.Fprintf(w, "partitad_cache_hits_total{cache=%q} %d\n", c.name, c.hits)
	}
	fmt.Fprintf(w, "# HELP partitad_cache_misses_total Cache misses, by cache.\n# TYPE partitad_cache_misses_total counter\n")
	for _, c := range caches {
		fmt.Fprintf(w, "partitad_cache_misses_total{cache=%q} %d\n", c.name, c.misses)
	}
	fmt.Fprintf(w, "# HELP partitad_cache_entries Live cache entries, by cache.\n# TYPE partitad_cache_entries gauge\n")
	for _, c := range caches {
		fmt.Fprintf(w, "partitad_cache_entries{cache=%q} %d\n", c.name, c.entries)
	}

	fmt.Fprintf(w, "# HELP partitad_workers Configured worker count.\n# TYPE partitad_workers gauge\npartitad_workers %d\n", g.Workers)
	fmt.Fprintf(w, "# HELP partitad_workers_busy Workers currently running a job.\n# TYPE partitad_workers_busy gauge\npartitad_workers_busy %d\n", g.WorkersBusy)
	fmt.Fprintf(w, "# HELP partitad_queue_depth Jobs waiting in the admission queue.\n# TYPE partitad_queue_depth gauge\npartitad_queue_depth %d\n", g.QueueDepth)
	fmt.Fprintf(w, "# HELP partitad_jobs_tracked Jobs retained for polling.\n# TYPE partitad_jobs_tracked gauge\npartitad_jobs_tracked %d\n", g.JobsTracked)
	draining := 0
	if g.Draining {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP partitad_draining Whether the server is draining for shutdown.\n# TYPE partitad_draining gauge\npartitad_draining %d\n", draining)

	writeMap("partitad_portfolio_wins_total", "Portfolio races won (first acceptable answer), by engine.", "engine", m.portfolioWins)
	fmt.Fprintf(w, "# HELP partitad_portfolio_first_acceptable_seconds Time from portfolio race start to the first acceptable answer.\n# TYPE partitad_portfolio_first_acceptable_seconds histogram\n")
	for i, ub := range solveBuckets {
		fmt.Fprintf(w, "partitad_portfolio_first_acceptable_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), m.portfolioBucketN[i])
	}
	fmt.Fprintf(w, "partitad_portfolio_first_acceptable_seconds_bucket{le=\"+Inf\"} %d\n", m.portfolioN)
	fmt.Fprintf(w, "partitad_portfolio_first_acceptable_seconds_sum %g\n", m.portfolioSum)
	fmt.Fprintf(w, "partitad_portfolio_first_acceptable_seconds_count %d\n", m.portfolioN)

	fmt.Fprintf(w, "# HELP partitad_solve_seconds Job solve wall time.\n# TYPE partitad_solve_seconds histogram\n")
	for i, ub := range solveBuckets {
		fmt.Fprintf(w, "partitad_solve_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), m.bucketN[i])
	}
	fmt.Fprintf(w, "partitad_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.solveN)
	fmt.Fprintf(w, "partitad_solve_seconds_sum %g\n", m.solveSum)
	fmt.Fprintf(w, "partitad_solve_seconds_count %d\n", m.solveN)

	ready := 0
	if g.Ready {
		ready = 1
	}
	fmt.Fprintf(w, "# HELP partitad_ready Whether the server is ready for traffic (journal replayed, not draining).\n# TYPE partitad_ready gauge\npartitad_ready %d\n", ready)
	fmt.Fprintf(w, "# HELP partitad_panics_recovered_total Worker panics contained by the pool.\n# TYPE partitad_panics_recovered_total counter\npartitad_panics_recovered_total %d\n", m.panics)

	jenabled := 0
	if g.JournalEnabled {
		jenabled = 1
	}
	fmt.Fprintf(w, "# HELP partitad_journal_enabled Whether a write-ahead journal is attached.\n# TYPE partitad_journal_enabled gauge\npartitad_journal_enabled %d\n", jenabled)
	jdegraded := 0
	if g.JournalDegraded {
		jdegraded = 1
	}
	fmt.Fprintf(w, "# HELP partitad_journal_degraded Whether journal appends are suspended after an unrepairable failure.\n# TYPE partitad_journal_degraded gauge\npartitad_journal_degraded %d\n", jdegraded)
	fmt.Fprintf(w, "# HELP partitad_journal_errors_total Journal appends or compactions that failed (durability degraded).\n# TYPE partitad_journal_errors_total counter\npartitad_journal_errors_total %d\n", m.journalErrors)
	fmt.Fprintf(w, "# HELP partitad_journal_compactions_total Journal compactions completed.\n# TYPE partitad_journal_compactions_total counter\npartitad_journal_compactions_total %d\n", g.JournalCompactions)
	fmt.Fprintf(w, "# HELP partitad_journal_replay_seconds Wall time of the startup journal replay.\n# TYPE partitad_journal_replay_seconds gauge\npartitad_journal_replay_seconds %g\n", m.replay.ReplayDuration.Seconds())
	fmt.Fprintf(w, "# HELP partitad_journal_records_replayed Records decoded during the startup replay.\n# TYPE partitad_journal_records_replayed gauge\npartitad_journal_records_replayed %d\n", m.replay.RecordsReplayed)
	fmt.Fprintf(w, "# HELP partitad_journal_jobs_restored Finished jobs restored from the journal at startup.\n# TYPE partitad_journal_jobs_restored gauge\npartitad_journal_jobs_restored %d\n", m.replay.JobsRestored)
	fmt.Fprintf(w, "# HELP partitad_journal_jobs_requeued Unfinished jobs re-enqueued from the journal at startup.\n# TYPE partitad_journal_jobs_requeued gauge\npartitad_journal_jobs_requeued %d\n", m.replay.JobsRequeued)

	fmt.Fprintf(w, "# HELP partitad_journal_fsync_seconds Journal fsync latency.\n# TYPE partitad_journal_fsync_seconds histogram\n")
	for i, ub := range fsyncBuckets {
		fmt.Fprintf(w, "partitad_journal_fsync_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), m.fsyncBucketN[i])
	}
	fmt.Fprintf(w, "partitad_journal_fsync_seconds_bucket{le=\"+Inf\"} %d\n", m.fsyncN)
	fmt.Fprintf(w, "partitad_journal_fsync_seconds_sum %g\n", m.fsyncSum)
	fmt.Fprintf(w, "partitad_journal_fsync_seconds_count %d\n", m.fsyncN)

	writeMap("partitad_faults_injected_total", "Faults fired by the injector, by point.", "point", g.FaultCounts)
}
