package service

// End-to-end test of the partitad binary over real HTTP. Gated behind
// PARTITAD_INTEGRATION=1 because it builds and launches the daemon;
// run it with `make integration` or directly:
//
//	PARTITAD_INTEGRATION=1 go test -run TestPartitadIntegration ./internal/service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"partita"
	"partita/internal/apps"
)

func TestPartitadIntegration(t *testing.T) {
	if os.Getenv("PARTITAD_INTEGRATION") == "" {
		t.Skip("set PARTITAD_INTEGRATION=1 to run the daemon end-to-end test")
	}

	bin := filepath.Join(t.TempDir(), "partitad")
	build := exec.Command("go", "build", "-o", bin, "partita/cmd/partitad")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build partitad: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-exited:
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("partitad did not exit after SIGTERM")
		}
	}()

	// The first stdout line carries the resolved listen address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "partitad listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))

	const rg = 10000
	submit := func() JobView {
		body, _ := json.Marshal(JobSpec{Kind: KindSelect, Workload: "gsm", RequiredGain: rg})
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	poll := func(id string) JobView {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var v JobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if v.Status == StatusDone || v.Status == StatusFailed {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck: %+v", id, v)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	first := poll(submit().ID)
	if first.Status != StatusDone || !first.Result.Selection.Solved() {
		t.Fatalf("first job: %+v", first)
	}

	// The daemon's answer must match the library called directly.
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	d, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{DataCount: w.DataCount})
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Select(rg)
	if err != nil {
		t.Fatal(err)
	}
	got := first.Result.Selection
	if got.Area != want.Area || got.Gain != want.Gain || got.Status != want.Status.String() {
		t.Errorf("service (%s A=%v G=%v) != library (%s A=%v G=%v)",
			got.Status, got.Area, got.Gain, want.Status, want.Area, want.Gain)
	}

	// An identical resubmission must be answered from the result cache.
	second := submit()
	if second.Status != StatusDone || !second.Cached {
		t.Errorf("resubmission not served from cache: %+v", second)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		`partitad_cache_hits_total{cache="result"} 1`,
		`partitad_jobs_submitted_total{kind="select"} 2`,
		"partitad_solve_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		fmt.Println(metrics)
	}
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
