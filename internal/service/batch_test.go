package service

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"partita/internal/faults"
)

// batchSpec builds a batch over the shared test program with one point
// per required gain.
func batchSpec(gains ...int64) BatchSpec {
	b := BatchSpec{
		Defaults: JobSpec{
			Source:  testSource,
			Root:    "process",
			Catalog: testCatalog(),
		},
	}
	for _, rg := range gains {
		b.Points = append(b.Points, BatchPoint{RequiredGain: rg})
	}
	return b
}

func waitBatch(t testing.TB, b *Batch) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !b.Done() {
		if time.Now().After(deadline) {
			t.Fatalf("batch %s did not finish; view: %+v", b.ID, b.View(true))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func solvesStarted(s *Server) uint64 {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	return s.metrics.solvesStarted
}

func TestBatchSolvesAllPointsAndMatchesSingleJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	gains := []int64{500, 1000, 1500, 2000}
	b, err := s.SubmitBatch(batchSpec(gains...))
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)

	v := b.View(true)
	if v.Status != StatusDone || v.Remaining != 0 || v.Total != len(gains) {
		t.Fatalf("batch view: %+v", v)
	}
	sum := *v.Summary
	if sum.Solved+sum.Reused+sum.Cached+sum.Coalesced+sum.Duplicates != len(gains) || sum.Failed != 0 {
		t.Fatalf("summary does not account for every point: %+v", sum)
	}
	if sum.Solved == 0 {
		t.Fatalf("no point was actually solved: %+v", sum)
	}

	// Every point's result must be byte-identical to what an independent
	// single-select submission of the same spec returns — and must be
	// answered from the cache the batch populated, without a new solve.
	before := solvesStarted(s)
	for i, rg := range gains {
		job, err := s.Submit(selectSpec(rg))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		jv := job.View()
		if !jv.Cached {
			t.Errorf("point %d (rg=%d): single submit after batch was not a cache hit", i, rg)
		}
		var sel *SelectionResult
		for _, p := range b.result().Points {
			if p.Index == i {
				sel = p.Selection
			}
		}
		if sel == nil || !reflect.DeepEqual(jv.Result.Selection, sel) {
			t.Errorf("point %d: batch result differs from single job:\nbatch:  %+v\nsingle: %+v",
				i, sel, jv.Result.Selection)
		}
	}
	if after := solvesStarted(s); after != before {
		t.Errorf("single submits after the batch re-solved: solves %d -> %d", before, after)
	}
}

func TestBatchCacheWarmResubmitPerformsZeroSolves(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	spec := batchSpec(400, 800, 1200)
	first, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, first)
	before := solvesStarted(s)

	second, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("finished batch must not be coalesced onto")
	}
	if !second.Done() {
		t.Fatalf("cache-warm resubmit should complete at submit: %+v", second.View(false))
	}
	sum := *second.View(false).Summary
	if sum.Cached+sum.Duplicates != sum.Total || sum.Solved != 0 || sum.Reused != 0 {
		t.Fatalf("resubmit summary should be all cached: %+v", sum)
	}
	if after := solvesStarted(s); after != before {
		t.Errorf("cache-warm resubmit solved: partitad_solves_started_total %d -> %d", before, after)
	}

	// The batch's events must still tell the whole story: one point
	// event per point plus the terminal summary.
	evs, done, _ := second.eventsAfter(0)
	if !done || len(evs) != sum.Total+1 {
		t.Fatalf("cached batch events: done=%v n=%d want %d", done, len(evs), sum.Total+1)
	}
	if evs[len(evs)-1].Type != EventSummary {
		t.Fatalf("last event is %q, want summary", evs[len(evs)-1].Type)
	}
}

func TestBatchWithinBatchDuplicatesSolveOnce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	spec := batchSpec(700, 700, 700)
	b, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	sum := *b.View(false).Summary
	if sum.Duplicates != 2 || sum.Solved != 1 {
		t.Fatalf("duplicate accounting: %+v", sum)
	}
	res := b.result()
	for i := 1; i < 3; i++ {
		if res.Points[i].Disposition != DispositionDuplicate {
			t.Errorf("point %d disposition %q, want duplicate", i, res.Points[i].Disposition)
		}
		if !reflect.DeepEqual(res.Points[i].Selection, res.Points[0].Selection) {
			t.Errorf("duplicate point %d carries a different result", i)
		}
	}
}

func TestBatchCoalescesOntoInflightSingleJob(t *testing.T) {
	inj, err := faults.Parse("seed=7,solver.stall=1,solver.stall.delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, Faults: inj})

	// The single job stalls 250ms before solving; the batch's identical
	// point must attach to it instead of re-solving.
	job, err := s.Submit(selectSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitBatch(batchSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	waitBatch(t, b)
	sum := *b.View(false).Summary
	if sum.Coalesced != 1 || sum.Solved != 0 {
		t.Fatalf("coalescing summary: %+v", sum)
	}
	if got, want := b.result().Points[0].Selection, job.Result().Selection; !reflect.DeepEqual(got, want) {
		t.Errorf("coalesced point differs from the job it attached to:\nbatch: %+v\njob:   %+v", got, want)
	}
}

func TestBatchIdenticalInflightBatchesCoalesce(t *testing.T) {
	inj, err := faults.Parse("seed=7,solver.stall=1,solver.stall.delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, Faults: inj})

	// Occupy the only worker so the first batch stays queued while the
	// second identical batch arrives.
	blocker, err := s.Submit(selectSpec(333))
	if err != nil {
		t.Fatal(err)
	}
	spec := batchSpec(600, 1200)
	first, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("identical in-flight batch was not coalesced: %s vs %s", first.ID, second.ID)
	}
	waitDone(t, blocker)
	waitBatch(t, first)
}

func TestBatchValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBatchPoints: 4})

	if _, err := s.SubmitBatch(BatchSpec{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := s.SubmitBatch(batchSpec(1, 2, 3, 4, 5)); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch: err=%v, want ErrBatchTooLarge", err)
	}

	bad := batchSpec(100, 200)
	bad.Points[1].RequiredGain = -5
	_, err := s.SubmitBatch(bad)
	var pe *BatchPointError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("malformed point: err=%v, want BatchPointError at index 1", err)
	}

	sweepDefaults := batchSpec(100)
	sweepDefaults.Defaults.Kind = KindSweep
	if _, err := s.SubmitBatch(sweepDefaults); err == nil {
		t.Error("batch with sweep defaults accepted")
	}
}

func TestBatchPointOverridesDefaults(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	spec := batchSpec(500)
	spec.Points = append(spec.Points, BatchPoint{RequiredGain: 500, MaxNodes: 100000})
	b, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	res := b.result()
	// Same gain but a different budget is a different content address:
	// both points must be primaries, not duplicates.
	if res.Points[0].Key == res.Points[1].Key {
		t.Fatal("budget override did not change the point's content address")
	}
	if res.Points[1].Disposition == DispositionDuplicate {
		t.Fatal("overridden point was treated as a duplicate")
	}
}

func TestBatchQueueFullBackpressure(t *testing.T) {
	inj, err := faults.Parse("seed=7,solver.stall=1,solver.stall.delay=400ms")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Faults: inj})

	// One job stalls on the worker, one fills the queue slot.
	if _, err := s.Submit(selectSpec(10)); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the stalling job up so the next submit
	// lands in the queue slot instead of racing for it.
	for deadline := time.Now().Add(5 * time.Second); s.busy.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the stalling job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(selectSpec(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitBatch(batchSpec(30)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch on a full queue: err=%v, want ErrQueueFull", err)
	}
}

func TestBatchJournalReplayRestoresResultsAndCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")

	s, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	spec := batchSpec(500, 1000, 1500)
	b, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	want := b.result()
	shutdownServer(t, s)

	re, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	defer shutdownServer(t, re)

	rb, ok := re.Batch(b.ID)
	if !ok {
		t.Fatalf("batch %s not restored", b.ID)
	}
	if !rb.Done() {
		t.Fatalf("restored batch not done: %+v", rb.View(false))
	}
	if got := rb.result(); !reflect.DeepEqual(got.Points, want.Points) {
		t.Errorf("restored points differ:\ngot:  %+v\nwant: %+v", got.Points, want.Points)
	}
	// The restored event log must still end in the summary so a client
	// reconnecting after the restart can finish its stream.
	evs, done, _ := rb.eventsAfter(0)
	if !done || len(evs) == 0 || evs[len(evs)-1].Type != EventSummary {
		t.Fatalf("restored events: done=%v n=%d", done, len(evs))
	}
	// And the per-point cache must be warm again: resubmitting the batch
	// performs zero new solves.
	before := solvesStarted(re)
	again, err := re.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Done() {
		t.Fatalf("resubmit after replay should complete at submit: %+v", again.View(false))
	}
	if after := solvesStarted(re); after != before {
		t.Errorf("resubmit after replay solved: %d -> %d", before, after)
	}
}

func TestBatchJournalReplayRequeuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")

	// Workers are never started: the batch stays queued, the process
	// "crashes" with only the submit record journaled.
	s, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitBatch(batchSpec(500, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	defer shutdownServer(t, re)
	if re.Recovery().JobsRequeued != 1 {
		t.Fatalf("requeued = %d, want 1", re.Recovery().JobsRequeued)
	}
	var rb *Batch
	for _, id := range re.batchOrder {
		rb = re.batches[id]
	}
	if rb == nil {
		t.Fatal("no batch restored")
	}
	waitBatch(t, rb)
	sum := *rb.View(false).Summary
	if sum.Solved+sum.Reused != 2 || sum.Failed != 0 {
		t.Fatalf("replayed batch summary: %+v", sum)
	}
	if !rb.View(false).Recovered {
		t.Error("restored batch not marked recovered")
	}
}

func shutdownServer(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.CloseJournal(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
}

func TestBatchRetentionEvictsFinished(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBatches: 2})
	var last *Batch
	for i := 0; i < 4; i++ {
		b, err := s.SubmitBatch(batchSpec(int64(100 * (i + 1))))
		if err != nil {
			t.Fatal(err)
		}
		waitBatch(t, b)
		last = b
	}
	s.mu.Lock()
	n := len(s.batches)
	s.mu.Unlock()
	if n > 2 {
		t.Fatalf("batches retained = %d, want <= 2", n)
	}
	if _, ok := s.Batch(last.ID); !ok {
		t.Fatal("newest batch evicted")
	}
}
