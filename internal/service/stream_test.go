package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"partita/internal/faults"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSEFrames parses frames off an SSE body until maxFrames data
// frames arrived or the stream ends.
func readSSEFrames(t testing.TB, body io.Reader, maxFrames int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.data != "" {
				frames = append(frames, cur)
				if len(frames) >= maxFrames {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "id:"):
			cur.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			cur.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			cur.data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	return frames
}

// streamGet opens the events endpoint as an SSE consumer.
func streamGet(t testing.TB, base, id string, lastEventID uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/batches/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postBatch(t testing.TB, base string, spec BatchSpec) (BatchView, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v BatchView
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode batch view: %v (%s)", err, raw)
		}
	}
	return v, resp
}

func TestSSEStreamOrderingAndTermination(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, resp := postBatch(t, ts.URL, batchSpec(400, 800, 1200, 1600))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	stream := streamGet(t, ts.URL, v.ID, 0)
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	frames := readSSEFrames(t, stream.Body, 1000)
	if len(frames) == 0 {
		t.Fatal("no frames")
	}

	// IDs strictly increase, every frame's payload id matches its id:
	// field, and the summary is the final frame — the stream terminated
	// because the server closed it after the terminal event.
	last := uint64(0)
	points := map[int]bool{}
	for i, f := range frames {
		var ev BatchEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d: %v (%s)", i, err, f.data)
		}
		if f.id != fmt.Sprint(ev.ID) {
			t.Fatalf("frame %d: id field %q != payload id %d", i, f.id, ev.ID)
		}
		if f.event != ev.Type {
			t.Fatalf("frame %d: event field %q != payload type %q", i, f.event, ev.Type)
		}
		if ev.ID <= last {
			t.Fatalf("frame %d: id %d not increasing past %d", i, ev.ID, last)
		}
		last = ev.ID
		switch ev.Type {
		case EventPoint:
			if points[ev.Point] {
				t.Fatalf("point %d completed twice", ev.Point)
			}
			points[ev.Point] = true
			if ev.Result == nil || ev.Result.Selection == nil {
				t.Fatalf("point event without result: %+v", ev)
			}
		case EventSummary:
			if i != len(frames)-1 {
				t.Fatalf("summary at frame %d of %d, want last", i, len(frames))
			}
			if ev.Summary == nil || ev.Summary.Total != 4 {
				t.Fatalf("bad summary: %+v", ev.Summary)
			}
		}
	}
	if len(points) != 4 {
		t.Fatalf("saw %d point completions, want 4", len(points))
	}
}

func TestLongPollFallbackDeliversIdenticalEvents(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postBatch(t, ts.URL, batchSpec(300, 600, 900))
	b, ok := s.Batch(v.ID)
	if !ok {
		t.Fatal("batch not tracked")
	}
	waitBatch(t, b)

	// SSE view of the full log.
	stream := streamGet(t, ts.URL, v.ID, 0)
	frames := readSSEFrames(t, stream.Body, 1000)
	stream.Body.Close()

	// Long-poll view: page through ?after until done.
	var polled []BatchEvent
	after := uint64(0)
	for {
		resp, err := http.Get(ts.URL + "/v1/batches/" + v.ID + "/events?after=" + strconv.FormatUint(after, 10))
		if err != nil {
			t.Fatal(err)
		}
		var page eventPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		polled = append(polled, page.Events...)
		if len(page.Events) > 0 {
			after = page.NextAfter
		}
		if page.Done && len(page.Events) == 0 {
			break
		}
	}

	if len(polled) != len(frames) {
		t.Fatalf("long-poll delivered %d events, SSE %d", len(polled), len(frames))
	}
	for i, f := range frames {
		var ev BatchEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatal(err)
		}
		pj, _ := json.Marshal(polled[i])
		sj, _ := json.Marshal(ev)
		if !bytes.Equal(pj, sj) {
			t.Fatalf("event %d differs:\nlong-poll: %s\nsse:       %s", i, pj, sj)
		}
	}
}

func TestSSEResumeWithLastEventID(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postBatch(t, ts.URL, batchSpec(250, 500, 750, 1000))
	b, _ := s.Batch(v.ID)
	waitBatch(t, b)

	// First connection reads two frames and drops.
	first := streamGet(t, ts.URL, v.ID, 0)
	head := readSSEFrames(t, first.Body, 2)
	first.Body.Close()
	if len(head) != 2 {
		t.Fatalf("head frames = %d", len(head))
	}
	lastID, err := strconv.ParseUint(head[1].id, 10, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Reconnect with Last-Event-ID: the tail must continue exactly after
	// the last delivered event, no gaps, no replays.
	second := streamGet(t, ts.URL, v.ID, lastID)
	tail := readSSEFrames(t, second.Body, 1000)
	second.Body.Close()
	if len(tail) == 0 {
		t.Fatal("no tail frames after resume")
	}
	var firstTail BatchEvent
	if err := json.Unmarshal([]byte(tail[0].data), &firstTail); err != nil {
		t.Fatal(err)
	}
	if firstTail.ID != lastID+1 {
		t.Fatalf("resume started at id %d, want %d", firstTail.ID, lastID+1)
	}
	var lastTail BatchEvent
	if err := json.Unmarshal([]byte(tail[len(tail)-1].data), &lastTail); err != nil {
		t.Fatal(err)
	}
	if lastTail.Type != EventSummary {
		t.Fatalf("resumed stream ended with %q, want summary", lastTail.Type)
	}
	all, _, _ := b.eventsAfter(0)
	if got, want := len(head)+len(tail), len(all); got != want {
		t.Fatalf("head+tail = %d frames, log holds %d", got, want)
	}
}

func TestDrainTerminatesStreamsWithEndEvent(t *testing.T) {
	// Long enough to pin the worker while the drain fires, short enough
	// that shutdown (which waits the stall out) stays inside the budget.
	inj, err := faults.Parse("seed=3,solver.stall=1,solver.stall.delay=2s")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Faults: inj})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pin the worker on a stalling job, then open a stream on a batch
	// that will never finish before the drain.
	if _, err := s.Submit(selectSpec(42)); err != nil {
		t.Fatal(err)
	}
	v, _ := postBatch(t, ts.URL, batchSpec(100, 200))

	stream := streamGet(t, ts.URL, v.ID, 0)
	defer stream.Body.Close()

	done := make(chan []sseFrame, 1)
	go func() {
		// Read until the server closes the connection.
		done <- readSSEFrames(t, stream.Body, 1000)
	}()
	time.Sleep(50 * time.Millisecond) // let the stream subscribe
	s.BeginDrain()

	select {
	case frames := <-done:
		if len(frames) == 0 {
			t.Fatal("stream closed with no frames at all")
		}
		end := frames[len(frames)-1]
		if end.event != EventEnd {
			t.Fatalf("terminal frame event %q, want %q (frames: %+v)", end.event, EventEnd, frames)
		}
		if !strings.Contains(end.data, ReasonDraining) {
			t.Fatalf("end frame data %q does not name the drain", end.data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate on drain")
	}
	// The stalled solve observes the drain deadline and unwinds; the
	// server shuts down within the test budget.
	shutdownServer(t, s)
}

func TestBatchHTTPStatusCodes(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBatchPoints: 3, MaxBatchBytes: 64 << 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Oversized point count: 413.
	_, resp := postBatch(t, ts.URL, batchSpec(1, 2, 3, 4))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("too many points: status %d, want 413", resp.StatusCode)
	}

	// Oversized body: 413 before any validation runs.
	big := batchSpec(1)
	big.Defaults.Source = testSource + strings.Repeat("// padding\n", 20000)
	_, resp = postBatch(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Malformed point: 400 naming the offending index.
	bad := batchSpec(10, 20)
	bad.Points[1].RequiredGain = -1
	body, _ := json.Marshal(bad)
	r, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed point: status %d, want 400", r.StatusCode)
	}
	if !strings.Contains(string(raw), "batch point 1") {
		t.Errorf("error does not name the offending index: %s", raw)
	}

	// Unknown batch: 404 on both snapshot and events.
	for _, path := range []string{"/v1/batches/nope", "/v1/batches/nope/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, r.StatusCode)
		}
	}
}

func TestBatchQueueFullHTTP429WithRetryAfter(t *testing.T) {
	inj, err := faults.Parse("seed=7,solver.stall=1,solver.stall.delay=400ms")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Faults: inj})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(selectSpec(10)); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); s.busy.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the stalling job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(selectSpec(20)); err != nil {
		t.Fatal(err)
	}
	_, resp := postBatch(t, ts.URL, batchSpec(30))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestBatchProgressEventsCarryIncumbents(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The GSM instance is big enough that the search installs improving
	// incumbents (the tiny fixture solves straight from the greedy seed,
	// which by design emits no events).
	spec := BatchSpec{
		Defaults: JobSpec{Workload: "gsm"},
		Points:   []BatchPoint{{RequiredGain: 10000}, {RequiredGain: 14000}},
	}
	v, _ := postBatch(t, ts.URL, spec)
	b, _ := s.Batch(v.ID)
	waitBatch(t, b)

	evs, _, _ := b.eventsAfter(0)
	progress := 0
	for _, ev := range evs {
		if ev.Type != EventProgress {
			continue
		}
		progress++
		if ev.Progress == nil || ev.Progress.IncumbentArea <= 0 {
			t.Fatalf("progress event without incumbent: %+v", ev)
		}
		if ev.Point < 0 || ev.Point >= 2 {
			t.Fatalf("progress event for out-of-range point %d", ev.Point)
		}
	}
	if progress == 0 {
		t.Fatal("no progress events: solved points must stream their incumbents")
	}
}
