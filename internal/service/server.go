package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"partita"
	"partita/internal/faults"
	"partita/internal/journal"
)

// DeadlineHeader carries the submitter's remaining deadline budget, in
// integer milliseconds, on forwarded requests. A relative duration —
// not an absolute instant — so it survives clock skew between nodes.
// The receiving node clamps the forwarded solve to it, which keeps a
// failover hop from silently inflating the caller's deadline to the
// target node's default; results reached under such a clamp are
// memoized only when proven (see runJob).
const DeadlineHeader = "X-Partitad-Deadline"

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the solver pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 503 (default 64).
	QueueDepth int
	// DesignCacheSize bounds the analyzed-design LRU (default 32).
	DesignCacheSize int
	// ResultCacheSize bounds the finished-result LRU (default 256).
	ResultCacheSize int
	// DefaultTimeout applies to jobs that set no TimeoutMs (0 = none).
	DefaultTimeout time.Duration
	// MaxTimeout caps every job deadline (default 2m; jobs asking for
	// more are clamped, and jobs asking for none inherit it).
	MaxTimeout time.Duration
	// MaxJobs bounds how many jobs are retained for polling; the oldest
	// finished jobs are evicted first (default 1024).
	MaxJobs int
	// MaxParallelism caps the per-job solver Parallelism (default:
	// GOMAXPROCS). Jobs asking for more are clamped, not rejected: the
	// request is a performance hint, and the operator's cap is what keeps
	// Workers × Parallelism from oversubscribing the machine.
	MaxParallelism int
	// PortfolioGap is the acceptability threshold applied to portfolio
	// jobs whose spec leaves Gap unset: a candidate within this proven
	// relative area gap of optimal is delivered as the first answer
	// while the exact proof keeps running (default 0.05).
	PortfolioGap float64
	// MaxBatchPoints caps how many points one POST /v1/batches may carry
	// (default 4096); oversized batches are rejected with 413.
	MaxBatchPoints int
	// MaxBatchBytes caps the POST /v1/batches request body (default
	// 32 MiB; batches carry inline programs and catalogs, so they get a
	// higher ceiling than single submits).
	MaxBatchBytes int64
	// MaxBatches bounds how many batches are retained for polling and
	// streaming; the oldest finished batches are evicted first
	// (default 128).
	MaxBatches int
	// NodeName, when non-empty, prefixes generated job IDs
	// ("<name>-j000001" instead of "j000001") so IDs are unique across
	// a cluster and pollers can route a job ID back to the node that
	// accepted it. Single-node daemons leave it empty.
	NodeName string
	// JournalPath, when non-empty, enables the crash-safety write-ahead
	// log: job lifecycle records are appended there and replayed by Open
	// after a restart. Empty disables journaling (no durability, no
	// overhead).
	JournalPath string
	// JournalSync is the fsync policy (default journal.SyncAlways).
	JournalSync journal.SyncPolicy
	// CheckpointEvery throttles journaled incumbent checkpoints per job
	// (default 100ms between records).
	CheckpointEvery time.Duration
	// CompactEvery triggers a journal compaction after that many
	// appends (default 4096).
	CompactEvery int
	// Faults is the optional fault injector (nil = disabled).
	Faults *faults.Injector
	// RemoteLookup, when set, is consulted by a worker after a local
	// result-cache miss and before solving: returning a result
	// short-circuits the solve and completes the job as cached. The
	// cluster layer wires this to peer result-cache peeks so a result
	// cached on any node serves the whole ring; the hook keeps that
	// routing concern out of the execution core.
	RemoteLookup func(key string) (*JobResult, bool)
	// OwnerOf, when set, reports cluster routing ownership for each
	// accepted job; it is recorded on the job, surfaced on the poll
	// endpoints, and journaled with the submit record so a restarted
	// node knows which jobs it accepted on another owner's behalf.
	OwnerOf func(key string) *Ownership
	// BatchFanout enables ring fan-out of pending batch points through
	// the RoutePoint/RemoteSolve hooks. Without both hooks it has no
	// effect: a single-node daemon always solves its batches locally.
	BatchFanout bool
	// RoutePoint, when set, names the remote peer that should execute
	// the batch point with the given content address. ok=false keeps the
	// point on the local pipeline (this node owns the key, or no live
	// remote owner exists). The cluster layer wires this to the
	// liveness- and breaker-filtered ring walk.
	RoutePoint func(key string) (peer string, ok bool)
	// RemoteSolve, when set, executes one batch point's spec on the
	// named peer and reports the result plus how many retries the
	// dispatch spent. It is called under the point's lease context:
	// expiry (or any error) requeues the point on the local pipeline.
	RemoteSolve func(ctx context.Context, peer string, spec JobSpec) (*JobResult, int, error)
	// BatchLease bounds one remote point dispatch end to end — it is the
	// journaled lease deadline after which the point is taken back and
	// requeued locally (default 30s).
	BatchLease time.Duration
	// FanoutParallel caps concurrent remote point dispatches per batch
	// (default 8).
	FanoutParallel int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DesignCacheSize <= 0 {
		c.DesignCacheSize = 32
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 256
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.PortfolioGap <= 0 {
		c.PortfolioGap = 0.05
	}
	if c.MaxBatchPoints <= 0 {
		c.MaxBatchPoints = 4096
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 32 << 20
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 128
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 100 * time.Millisecond
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 4096
	}
	if c.BatchLease <= 0 {
		c.BatchLease = 30 * time.Second
	}
	if c.FanoutParallel <= 0 {
		c.FanoutParallel = 8
	}
	return c
}

// Admission-control sentinels; the HTTP layer maps both to 503.
var (
	// ErrDraining reports that the server is shutting down and accepts
	// no new jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull reports that the admission queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
)

// Server is the partitad core: job store, admission queue, worker pool,
// content-addressed caches, and the HTTP surface. Create with New,
// launch the pool with Start, serve the Handler, and stop with
// Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	designs *Cache
	results *Cache
	mux     *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in submission order
	inflight map[string]*Job // queued/running jobs by result key
	queued   int             // jobs admitted but not yet picked up by a worker

	// Batch submissions (see batch.go / stream.go).
	batches         map[string]*Batch
	batchOrder      []string          // batch IDs in submission order
	inflightBatches map[string]*Batch // unfinished batches by batch key
	batchSeq        atomic.Uint64
	streams         atomic.Int64 // live SSE event streams

	queue       chan *Job
	drain       chan struct{}
	stopWorkers chan struct{}
	jobWG       sync.WaitGroup // queued + running jobs
	workerWG    sync.WaitGroup
	draining    atomic.Bool
	leaving     atomic.Bool
	ready       atomic.Bool
	busy        atomic.Int64
	seq         atomic.Uint64
	startOnce   sync.Once
	drainOnce   sync.Once
	stopOnce    sync.Once

	// Crash safety and fault injection (see recover.go).
	inj      *faults.Injector
	jnl      *journal.Journal
	jmu      sync.Mutex // serializes journal appends with compaction snapshots
	recovery RecoveryStats
}

// New builds a Server (workers are not started yet; call Start).
// Journaling is attached by Open; New alone never touches disk.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		metrics:     NewMetrics(),
		designs:     NewCache(cfg.DesignCacheSize),
		results:     NewCache(cfg.ResultCacheSize),
		jobs:            map[string]*Job{},
		inflight:        map[string]*Job{},
		batches:         map[string]*Batch{},
		inflightBatches: map[string]*Batch{},
		queue:       make(chan *Job, cfg.QueueDepth),
		drain:       make(chan struct{}),
		stopWorkers: make(chan struct{}),
		inj:         cfg.Faults,
	}
	// A journal-less server is ready immediately; Open flips this after
	// the replay finishes.
	s.ready.Store(cfg.JournalPath == "")
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/jobs/{id}/edits", s.handleEdit)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	s.mux.HandleFunc("GET /v1/batches", s.handleBatchList)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchGet)
	s.mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// now is the service clock: wall time, plus the injected skew when the
// clock.skew fault is configured.
func (s *Server) now() time.Time { return s.inj.Now() }

// Start launches the worker pool. Safe to call once; later calls are
// no-ops.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.cfg.Workers; i++ {
			s.workerWG.Add(1)
			go s.worker()
		}
	})
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes the Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains gracefully: new submissions are rejected, every
// queued and running job finishes (running solves see an expired
// deadline and return their best incumbents), then the workers stop.
// The context bounds how long to wait for the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workerWG.Wait()
	return nil
}

// Submit validates, content-addresses, and admits one job. Cached
// results complete the job immediately; an identical in-flight job is
// returned instead of enqueuing a duplicate (coalescing). The error is
// ErrDraining or ErrQueueFull for admission rejections, anything else
// for invalid specs.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		s.metrics.JobRejected()
		return nil, ErrDraining
	}
	key, err := spec.resultKey()
	if err != nil {
		return nil, err
	}
	now := s.now()
	job := &Job{
		ID:        s.newJobID(),
		Spec:      spec,
		Key:       key,
		doneCh:    make(chan struct{}),
		status:    StatusQueued,
		submitted: now,
	}
	// Ownership is resolved once, at acceptance: the owner recorded here
	// is the routing decision this node acted on, even if ring
	// membership changes later.
	if s.cfg.OwnerOf != nil {
		job.owner = s.cfg.OwnerOf(key)
	}
	if v, ok := s.results.Get(key); ok {
		job.complete(v.(*JobResult), true, now)
		s.track(job)
		s.journalAppend(job, recSubmit, submitData{ID: job.ID, Key: key, Spec: spec, Owner: job.owner})
		s.journalAppend(job, recDone, doneData{Result: job.Result(), Cached: true, Memoize: true, Outcome: "cached"})
		s.metrics.JobSubmitted(string(spec.Kind))
		return job, nil
	}
	s.mu.Lock()
	if prev, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.metrics.JobCoalesced()
		return prev, nil
	}
	// Admission is a counter check, not a channel send, so the job can be
	// journaled before it becomes visible to any worker: the submit
	// record must reach the log ahead of the running/done records a fast
	// worker would append, or replay drops the job's journaled result.
	if s.inj.Fire(faults.QueueFull) || s.queued >= cap(s.queue) {
		s.mu.Unlock()
		s.metrics.JobRejected()
		return nil, ErrQueueFull
	}
	s.inflight[key] = job
	s.queued++
	s.mu.Unlock()
	s.jobWG.Add(1)
	s.track(job)
	// The job is durably accepted only once this append is synced; the
	// 202 response follows it, so a crash can never lose an acked job.
	s.journalAppend(job, recSubmit, submitData{ID: job.ID, Key: key, Spec: spec, Owner: job.owner})
	s.metrics.JobSubmitted(string(spec.Kind))
	// Never blocks: queued <= cap(queue) is enforced under s.mu above,
	// and workers decrement only after receiving.
	s.queue <- job
	return job, nil
}

// newJobID allocates the next job ID, prefixed with the node name in
// cluster mode.
func (s *Server) newJobID() string {
	n := s.seq.Add(1)
	if s.cfg.NodeName != "" {
		return fmt.Sprintf("%s-j%06d", s.cfg.NodeName, n)
	}
	return fmt.Sprintf("j%06d", n)
}

// CachedResult returns the memoized result for a content address, if
// any. The cluster layer serves it to peers peeking this node's cache.
func (s *Server) CachedResult(key string) (*JobResult, bool) {
	v, ok := s.results.Get(key)
	if !ok {
		return nil, false
	}
	return v.(*JobResult), true
}

// ResultKey computes the content address a submission of spec would be
// stored under — the cluster routing key. It validates the spec the
// same way Submit does.
func ResultKey(spec JobSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	return spec.resultKey()
}

// Job returns a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// track retains the job for polling, evicting the oldest finished jobs
// beyond the retention bound.
func (s *Server) track(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].Done() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case job := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			// Batch jobs manage their own completion accounting: the
			// batch finishes (and releases its jobWG slot) when its last
			// point settles, which may be after this worker returns if
			// points are coalesced onto other in-flight jobs.
			if job.batch != nil {
				s.runBatch(job)
			} else {
				s.runJob(job)
			}
		case <-s.stopWorkers:
			return
		}
	}
}

func (s *Server) runJob(job *Job) {
	defer s.jobWG.Done()
	s.busy.Add(1)
	defer s.busy.Add(-1)
	// A panicking solve (or an injected worker.panic) must not take the
	// worker down with it: the job fails, the pool keeps serving.
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			delete(s.inflight, job.Key)
			s.mu.Unlock()
			err := fmt.Errorf("service: worker panic: %v", r)
			job.fail(err, s.now())
			s.journalAppend(job, recFailed, failedData{Error: err.Error()})
			s.metrics.PanicRecovered()
			s.metrics.JobCompleted("error", 0)
		}
	}()
	job.setRunning(s.now())
	s.journalAppend(job, recRunning, nil)
	if s.inj.Fire(faults.WorkerPanic) {
		panic("faults: injected worker.panic")
	}
	if s.inj.Fire(faults.SolverStall) {
		time.Sleep(s.inj.Duration(faults.SolverStallDelay, 25*time.Millisecond))
	}
	start := time.Now()
	// Before paying for a solve, peek the peer result caches: a hit
	// anywhere in the cluster serves everywhere. The local result cache
	// was already missed at Submit time (a hit completes the job there).
	if s.cfg.RemoteLookup != nil {
		if res, ok := s.cfg.RemoteLookup(job.Key); ok && res != nil {
			s.mu.Lock()
			delete(s.inflight, job.Key)
			s.mu.Unlock()
			job.complete(res, true, s.now())
			s.results.Put(job.Key, res)
			s.metrics.JobCompleted("cached", time.Since(start).Seconds())
			s.journalAppend(job, recDone, doneData{Result: res, Cached: true, Memoize: true, Outcome: "cached"})
			return
		}
	}
	s.metrics.SolveStarted()
	res, outcome, err := s.execute(job)
	elapsed := time.Since(start).Seconds()
	s.mu.Lock()
	delete(s.inflight, job.Key)
	s.mu.Unlock()
	if err != nil {
		job.fail(err, s.now())
		s.journalAppend(job, recFailed, failedData{Error: err.Error()})
		s.metrics.JobCompleted("error", elapsed)
		return
	}
	job.complete(res, false, s.now())
	s.metrics.JobCompleted(outcome, elapsed)
	// Results produced while draining may be artificially degraded by
	// the shutdown deadline; never memoize those. A solve clamped to a
	// forwarded caller's inherited deadline memoizes only proven
	// outcomes: an anytime incumbent reached under someone else's
	// shrunken budget must not answer full-budget requests that share
	// the content address.
	memoize := !s.draining.Load() && (!job.deadlineClamped || provenOutcome(outcome))
	if memoize {
		s.results.Put(job.Key, res)
	}
	s.journalAppend(job, recDone, doneData{Result: res, Memoize: memoize, Outcome: outcome})
}

// design returns the analyzed design for the job's program, memoized in
// the content-addressed design cache.
func (s *Server) design(spec JobSpec) (*partita.Design, error) {
	source, root, cat, opt, tags, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	key := partita.CanonicalHash(source, root, cat, opt, tags...)
	if v, ok := s.designs.Get(key); ok {
		return v.(*partita.Design), nil
	}
	d, err := partita.Analyze(source, root, cat, opt)
	if err != nil {
		return nil, err
	}
	s.designs.Put(key, d)
	return d, nil
}

// execute runs one job to completion under its deadline, node budget,
// and the server drain.
func (s *Server) execute(job *Job) (*JobResult, string, error) {
	spec := job.Spec
	design, err := s.design(spec)
	if err != nil {
		return nil, "", err
	}
	if spec.Kind == KindAnalyze {
		return &JobResult{Kind: spec.Kind, Analyze: NewAnalyzeResult(design)}, "optimal", nil
	}

	ctx, stop := withDrain(context.Background(), s.drain)
	defer stop()
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMs > 0 {
		timeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if d := spec.inheritDeadline; d > 0 && (timeout <= 0 || d < timeout) {
		timeout = d
		job.deadlineClamped = true
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	bud := partita.Budget{MaxNodes: spec.MaxNodes, Parallelism: spec.Parallelism}
	if bud.Parallelism > s.cfg.MaxParallelism {
		bud.Parallelism = s.cfg.MaxParallelism
	}

	switch spec.Kind {
	case KindSelect:
		if spec.Mode == ModePortfolio {
			return s.executePortfolio(ctx, job, design, bud)
		}
		var sel *partita.Selection
		if len(spec.PerPath) > 0 {
			sel, err = design.SelectPerPathCtx(ctx, spec.RequiredGain, spec.PerPath, bud)
		} else {
			sel, err = design.SelectCtxObserve(ctx, spec.RequiredGain, bud, s.observeJob(job))
		}
		if err != nil {
			return nil, "", err
		}
		return &JobResult{Kind: spec.Kind, Selection: NewSelectionResult(sel)}, Outcome(sel), nil
	case KindSweep:
		points := spec.Points
		if points <= 0 {
			points = 5
		}
		pts, err := design.SweepCtxObserve(ctx, points, bud, s.observeJob(job))
		if err != nil {
			return nil, "", err
		}
		outcome := "optimal"
		for _, p := range pts {
			switch o := Outcome(p.Sel); o {
			case "degraded":
				outcome = o
			case "feasible":
				if outcome == "optimal" {
					outcome = o
				}
			}
		}
		return &JobResult{Kind: spec.Kind, Sweep: NewSweepResult(pts)}, outcome, nil
	}
	return nil, "", fmt.Errorf("service: unhandled job kind %q", spec.Kind)
}

// executePortfolio runs one portfolio-mode select job: fold the spec's
// edit history into one delta, reconstruct the warm seed from the
// parent's cached result when one is named and still available, and
// race the engines. Correctness never depends on the seed: a missing or
// stale parent result only costs warm-start pruning.
func (s *Server) executePortfolio(ctx context.Context, job *Job, design *partita.Design, bud partita.Budget) (*JobResult, string, error) {
	spec := job.Spec
	gap := s.cfg.PortfolioGap
	if spec.Gap != nil {
		gap = *spec.Gap
	}
	opt := partita.PortfolioOptions{
		Gap:     gap,
		Budget:  bud,
		PerPath: spec.PerPath,
		Observe: s.observeJob(job),
		Warm:    s.parentSeed(design, spec.ParentKey),
	}
	delta := partita.Delta{}
	for _, e := range spec.Edits {
		delta = delta.Merge(e)
	}
	if delta.Required == nil {
		rq := spec.RequiredGain
		delta.Required = &rq
	}
	res, err := design.Reselect(ctx, nil, delta, opt)
	if err != nil {
		return nil, "", err
	}
	s.metrics.PortfolioWin(string(res.FirstEngine), res.First.Seconds())
	return &JobResult{Kind: spec.Kind, Selection: NewPortfolioSelectionResult(res)}, Outcome(res.Sel), nil
}

// parentSeed rebuilds a warm-start selection from the parent job's
// cached result: its chosen IMP IDs resolved against this design's
// database. Returns nil — no seed — when the parent's result is gone
// from every cache or references methods this design does not have.
func (s *Server) parentSeed(design *partita.Design, parentKey string) *partita.Selection {
	if parentKey == "" {
		return nil
	}
	res, ok := s.CachedResult(parentKey)
	if !ok && s.cfg.RemoteLookup != nil {
		res, ok = s.cfg.RemoteLookup(parentKey)
	}
	if !ok || res == nil || res.Selection == nil || len(res.Selection.Chosen) == 0 {
		return nil
	}
	byID := make(map[string]*partita.IMP, len(design.DB.IMPs))
	for _, m := range design.DB.IMPs {
		byID[m.ID] = m
	}
	sel := &partita.Selection{Status: partita.Feasible}
	for _, c := range res.Selection.Chosen {
		m, ok := byID[c.ID]
		if !ok {
			return nil
		}
		sel.Chosen = append(sel.Chosen, m)
	}
	return sel
}

// observeJob folds solver incumbents into the job's poll snapshot and,
// when a journal is attached, persists throttled incumbent checkpoints
// so a crash mid-solve recovers to at least the last checkpoint.
func (s *Server) observeJob(job *Job) func(partita.Incumbent) {
	return func(in partita.Incumbent) {
		job.observe(in)
		if s.jnl == nil {
			return
		}
		if job.checkpointDue(time.Now(), s.cfg.CheckpointEvery) {
			s.journalAppend(job, recCheckpoint, job.progressSnapshot())
		}
	}
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	// A forwarded request may carry the submitter's remaining budget;
	// the inherited deadline rides outside the content address (it is a
	// cap, not part of the problem) and clamps the solve in execute.
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			spec.inheritDeadline = time.Duration(ms) * time.Millisecond
		}
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Back-pressure, not failure: the client should retry after a
		// beat. Submissions are idempotent (content-addressed), so
		// retrying is always safe.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if job.Done() {
		code = http.StatusOK
	}
	writeJSON(w, code, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].View())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// maxLongPollWait caps the ?wait= long-poll duration.
const maxLongPollWait = 30 * time.Second

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such job %q", r.PathValue("id")))
		return
	}
	// ?wait=10s long-polls until the job finishes, the wait elapses, or
	// the server begins draining — the drain case is what lets idle
	// pollers disconnect promptly on SIGTERM instead of pinning the
	// HTTP server for the full drain deadline.
	if wait := r.URL.Query().Get("wait"); wait != "" && !job.Done() {
		d, err := time.ParseDuration(wait)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad wait %q", wait))
			return
		}
		if d > maxLongPollWait {
			d = maxLongPollWait
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-job.DoneCh():
		case <-t.C:
		case <-r.Context().Done():
		case <-s.drain:
		}
	}
	writeJSON(w, http.StatusOK, job.View())
}

// EditRequest is the body of POST /v1/jobs/{id}/edits: the edits to
// apply on top of the parent job's problem, plus optional overrides of
// the derived job's portfolio gap and budgets.
type EditRequest struct {
	// Edits is applied in order after the parent's own edit history.
	Edits []partita.Delta `json:"edits"`
	// Gap overrides the portfolio acceptability threshold (nil keeps
	// the parent's, or the server default).
	Gap *float64 `json:"gap,omitempty"`
	// TimeoutMs, MaxNodes, and Parallelism override the parent's
	// budgets when non-nil.
	TimeoutMs   *int64 `json:"timeoutMs,omitempty"`
	MaxNodes    *int   `json:"maxNodes,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
}

// handleEdit derives a new job from a finished select job by appending
// edits to its spec. The derived spec is self-contained — the parent's
// full edit history plus the new edits ride along — so it journals,
// replays, and content-addresses like any other submission; the parent
// link is only a warm-start hint (and part of the content address).
func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	parent, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such job %q", r.PathValue("id")))
		return
	}
	var req EditRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad edit request: %w", err))
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: edit request carries no edits"))
		return
	}
	if parent.Spec.Kind != KindSelect {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: job %s is a %s job; edits apply to select jobs", parent.ID, parent.Spec.Kind))
		return
	}
	if !parent.Done() {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job %s has not finished; edit the settled result", parent.ID))
		return
	}

	spec := parent.Spec
	spec.Mode = ModePortfolio
	spec.Edits = append(append([]partita.Delta(nil), parent.Spec.Edits...), req.Edits...)
	spec.ParentKey = parent.Key
	if req.Gap != nil {
		spec.Gap = req.Gap
	}
	if req.TimeoutMs != nil {
		spec.TimeoutMs = *req.TimeoutMs
	}
	if req.MaxNodes != nil {
		spec.MaxNodes = *req.MaxNodes
	}
	if req.Parallelism != nil {
		spec.Parallelism = *req.Parallelism
	}

	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if job.Done() {
		code = http.StatusOK
	}
	writeJSON(w, code, job.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	dh, dm := s.designs.Stats()
	rh, rm := s.results.Stats()
	s.mu.Lock()
	tracked := len(s.jobs)
	batches := len(s.batches)
	s.mu.Unlock()
	g := Gauges{
		Workers:        s.cfg.Workers,
		WorkersBusy:    int(s.busy.Load()),
		QueueDepth:     len(s.queue),
		Draining:       s.draining.Load(),
		JobsTracked:    tracked,
		FaultCounts:    s.inj.Counts(),
		BatchesTracked: batches,
		StreamsActive:  int(s.streams.Load()),
	}
	if s.jnl != nil {
		g.JournalEnabled = true
		g.JournalCompactions = s.jnl.Compactions()
		g.JournalDegraded = s.jnl.Degraded()
	}
	g.Ready = s.unreadyReason() == ""
	s.metrics.WritePrometheus(w, g, []cacheStat{
		{name: "design", hits: dh, misses: dm, entries: s.designs.Len()},
		{name: "result", hits: rh, misses: rm, entries: s.results.Len()},
	})
}

// handleHealth is the liveness probe: it answers 200 for as long as the
// process can serve HTTP at all, even while replaying the journal or
// draining — restartable conditions are the readiness probe's business.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"workers":    s.cfg.Workers,
		"queueDepth": len(s.queue),
	})
}

// Readiness reasons reported by /readyz. Exactly one applies at a time;
// when several conditions hold the most specific wins (a node that is
// leaving the ring is also draining, but "leaving-ring" is the reason
// operators and peers need).
const (
	// ReasonReplaying: the journal replay has not finished; the job
	// table is still being rebuilt.
	ReasonReplaying = "replaying"
	// ReasonLeavingRing: the node announced its departure from the
	// cluster ring ahead of a drain.
	ReasonLeavingRing = "leaving-ring"
	// ReasonDraining: shutdown in progress, no new jobs accepted.
	ReasonDraining = "draining"
	// ReasonJournalDegraded: appends are suspended after an
	// unrepairable journal failure; accepted jobs would not be durable.
	ReasonJournalDegraded = "journal-degraded"
)

// unreadyReason reports why the server is not ready ("" = ready).
func (s *Server) unreadyReason() string {
	switch {
	case !s.ready.Load():
		return ReasonReplaying
	case s.leaving.Load():
		return ReasonLeavingRing
	case s.draining.Load():
		return ReasonDraining
	case s.jnl != nil && s.jnl.Degraded():
		return ReasonJournalDegraded
	}
	return ""
}

// handleReady is the readiness probe: 503 during journal replay, during
// drain (and ring departure), and while the journal is degraded, so
// load balancers stop routing before shutdown, never route to a daemon
// still rebuilding its job table, and steer work away from a node that
// can no longer make jobs durable. The body names the reason so an
// operator staring at a 503 knows which of those it is.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ready", "ready": true}
	code := http.StatusOK
	if reason := s.unreadyReason(); reason != "" {
		code = http.StatusServiceUnavailable
		body["status"] = reason
		body["reason"] = reason
		body["ready"] = false
	}
	writeJSON(w, code, body)
}
