package service

// The service benchmark harness measures the daemon as a system — job
// throughput, solve-latency percentiles, and the cache-hit speedup —
// over the bundled GSM and JPEG workloads, and records the numbers in
// BENCH_service.json at the repo root (override the path with the
// BENCH_SERVICE_OUT environment variable):
//
//	go test -bench 'BenchmarkService' -benchtime 20x ./internal/service
//
// Each run merges into the existing file, so the full document can be
// built up one benchmark at a time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// benchMetrics is one benchmark's entry in BENCH_service.json.
type benchMetrics struct {
	OpsPerSec float64 `json:"opsPerSec"`
	P50Ms     float64 `json:"p50Ms"`
	P99Ms     float64 `json:"p99Ms"`
	Jobs      int     `json:"jobs"`
	// CacheHitSpeedup is cold-solve latency over cached-answer latency
	// (only set by the cache benchmark).
	CacheHitSpeedup float64 `json:"cacheHitSpeedup,omitempty"`
}

var benchOut struct {
	mu sync.Mutex
}

// benchOutPath locates BENCH_service.json: $BENCH_SERVICE_OUT if set,
// else next to go.mod (walking up from the package directory).
func benchOutPath() (string, error) {
	if p := os.Getenv("BENCH_SERVICE_OUT"); p != "" {
		return p, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_service.json"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// record merges one benchmark's metrics into BENCH_service.json.
func record(b *testing.B, name string, m benchMetrics) {
	benchOut.mu.Lock()
	defer benchOut.mu.Unlock()
	path, err := benchOutPath()
	if err != nil {
		b.Logf("bench output skipped: %v", err)
		return
	}
	doc := map[string]benchMetrics{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	doc[name] = m
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func percentileMs(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// solveDuration waits for the job and returns its running time.
func solveDuration(b *testing.B, job *Job) time.Duration {
	waitDone(b, job)
	v := job.View()
	if v.Status != StatusDone {
		b.Fatalf("job %s: status %s (%s)", v.ID, v.Status, v.Error)
	}
	return v.FinishedAt.Sub(v.SubmittedAt)
}

// benchWorkloadSelect drives uncached select solves over a band of gain
// targets and reports throughput plus latency percentiles.
func benchWorkloadSelect(b *testing.B, workload string) {
	s := New(Config{Workers: 2, QueueDepth: 1024, MaxJobs: 1 << 20, ResultCacheSize: 1})
	s.Start()
	defer shutdownNow(b, s)

	// Warm the design cache so the numbers measure solving, not parsing.
	first, err := s.Submit(JobSpec{Kind: KindAnalyze, Workload: workload})
	if err != nil {
		b.Fatal(err)
	}
	waitDone(b, first)
	maxGain := first.Result().Analyze.MaxReachableGain

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// Distinct gain targets keep every solve a result-cache miss.
		rg := maxGain * int64(10+i%80) / 100
		job, err := s.Submit(JobSpec{Kind: KindSelect, Workload: workload, RequiredGain: rg})
		if err != nil {
			b.Fatal(err)
		}
		durs = append(durs, solveDuration(b, job))
	}
	elapsed := time.Since(start)
	b.StopTimer()

	m := benchMetrics{
		OpsPerSec: float64(b.N) / elapsed.Seconds(),
		P50Ms:     percentileMs(durs, 0.50),
		P99Ms:     percentileMs(durs, 0.99),
		Jobs:      b.N,
	}
	b.ReportMetric(m.OpsPerSec, "jobs/sec")
	b.ReportMetric(m.P50Ms, "p50_ms")
	b.ReportMetric(m.P99Ms, "p99_ms")
	record(b, "select_"+workload, m)
}

func BenchmarkServiceSelectGSM(b *testing.B)  { benchWorkloadSelect(b, "gsm") }
func BenchmarkServiceSelectJPEG(b *testing.B) { benchWorkloadSelect(b, "jpeg") }

// BenchmarkServiceCacheHit measures the content-addressed result cache:
// one cold solve, then repeated submissions of the identical spec, and
// reports how much faster the cached answer returns.
func BenchmarkServiceCacheHit(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 1024, MaxJobs: 1 << 20})
	s.Start()
	defer shutdownNow(b, s)

	spec := JobSpec{Kind: KindSelect, Workload: "gsm", RequiredGain: 10000}
	coldStart := time.Now()
	job, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	waitDone(b, job)
	cold := time.Since(coldStart)

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		hit, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !hit.Done() {
			b.Fatal("expected an immediate cached completion")
		}
		durs = append(durs, time.Since(t0))
	}
	elapsed := time.Since(start)
	b.StopTimer()

	hits, _ := s.results.Stats()
	if hits < uint64(b.N) {
		b.Fatalf("result cache hits = %d, want >= %d", hits, b.N)
	}
	p50 := percentileMs(durs, 0.50)
	m := benchMetrics{
		OpsPerSec: float64(b.N) / elapsed.Seconds(),
		P50Ms:     p50,
		P99Ms:     percentileMs(durs, 0.99),
		Jobs:      b.N,
	}
	if p50 > 0 {
		m.CacheHitSpeedup = float64(cold) / float64(time.Millisecond) / p50
	}
	b.ReportMetric(m.OpsPerSec, "jobs/sec")
	b.ReportMetric(m.CacheHitSpeedup, "cache_speedup_x")
	record(b, "cache_hit_gsm", m)
}

// shutdownNow tears a bench server down without waiting on a drain.
func shutdownNow(b *testing.B, s *Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
}
