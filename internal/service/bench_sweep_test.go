package service

// The sweep benchmark harness quantifies the shared-analysis lazy
// pipeline (analyze once, select many) against independent per-point
// solves, at two levels:
//
//   - Library: a 64-point sweep over the GSM and JPEG encoders through
//     Design.NewSweepPipeline versus 64 independent Design.SelectCtx
//     calls on the same analyzed design.
//   - Service: a 64-point GSM sweep submitted as one POST /v1/batches
//     versus 64 independent job submissions over HTTP, plus the
//     cache-warm batch resubmit (which must start zero new solves —
//     partitad_solves_started_total stays flat).
//
// Results land in BENCH_sweep.json at the repo root (override with
// BENCH_SWEEP_OUT):
//
//	go test -run NoTests -bench BenchmarkSweep -benchtime 1x ./internal/service
//
// Each run merges into the existing file, one entry per benchmark.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"partita"
	"partita/internal/apps"
)

// sweepBenchEntry is one benchmark's row in BENCH_sweep.json.
type sweepBenchEntry struct {
	Points      int     `json:"points"`
	PerPointSec float64 `json:"perPointSec"`
	PipelineSec float64 `json:"pipelineSec"`
	// Speedup is per-point wall clock over pipeline wall clock.
	Speedup float64 `json:"speedup"`
	// Pipeline dispositions (library-level entries).
	Solved      int `json:"solved,omitempty"`
	Reused      int `json:"reused,omitempty"`
	GreedySeeds int `json:"greedySeeds,omitempty"`
	// Batch dispositions (service-level entries; batchRemote counts
	// points solved by ring peers in the fan-out benchmark).
	BatchSolved   int  `json:"batchSolved,omitempty"`
	BatchReused   int  `json:"batchReused,omitempty"`
	BatchRemote   int  `json:"batchRemote,omitempty"`
	ResubmitZero  bool `json:"resubmitZeroSolves,omitempty"`
	ResubmitCache int  `json:"resubmitCached,omitempty"`
}

// sweepBenchOutPath locates BENCH_sweep.json: $BENCH_SWEEP_OUT if set,
// else next to go.mod.
func sweepBenchOutPath() (string, error) {
	if p := os.Getenv("BENCH_SWEEP_OUT"); p != "" {
		return p, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_sweep.json"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func recordSweepBench(b *testing.B, name string, e sweepBenchEntry) {
	benchOut.mu.Lock()
	defer benchOut.mu.Unlock()
	path, err := sweepBenchOutPath()
	if err != nil {
		b.Logf("bench output skipped: %v", err)
		return
	}
	doc := map[string]sweepBenchEntry{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	doc[name] = e
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// sweepGains is the benchmark's 64-point grid: evenly spaced across the
// design's reachable range, the same spacing SweepPoints uses.
func sweepGains(maxGain int64, points int) []int64 {
	gains := make([]int64, points)
	for i := 1; i <= points; i++ {
		gains[i-1] = maxGain * int64(i) / int64(points)
	}
	return gains
}

// benchSweepShared runs the library-level comparison on one workload.
func benchSweepShared(b *testing.B, name string, load func() (apps.Workload, error)) {
	w, err := load()
	if err != nil {
		b.Fatal(err)
	}
	design, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{DataCount: w.DataCount})
	if err != nil {
		b.Fatal(err)
	}
	const points = 64
	gains := sweepGains(design.MaxReachableGain(), points)

	var entry sweepBenchEntry
	entry.Points = points
	for i := 0; i < b.N; i++ {
		// Independent per-point solves: the pre-pipeline sweep shape —
		// same analyzed design, but no plateau reuse, no infeasibility
		// propagation, no warm starts.
		t0 := time.Now()
		for _, rg := range gains {
			if _, err := design.SelectCtx(b.Context(), rg, partita.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
		perPoint := time.Since(t0)

		t0 = time.Now()
		pl := design.NewSweepPipeline(gains, partita.Budget{}, nil)
		for {
			_, ok, err := pl.Next(b.Context())
			if !ok {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		pipeline := time.Since(t0)

		st := pl.Stats()
		entry.PerPointSec = perPoint.Seconds()
		entry.PipelineSec = pipeline.Seconds()
		entry.Speedup = perPoint.Seconds() / pipeline.Seconds()
		entry.Solved, entry.Reused, entry.GreedySeeds = st.Solved, st.Reused, st.GreedySeeds
	}
	b.ReportMetric(entry.Speedup, "speedup_x")
	b.ReportMetric(entry.PipelineSec, "pipeline_sec")
	recordSweepBench(b, name, entry)
}

func BenchmarkSweepSharedAnalysisGSM(b *testing.B) {
	benchSweepShared(b, "pipeline_vs_perpoint_gsm", apps.GSMEncoderWorkload)
}

func BenchmarkSweepSharedAnalysisJPEG(b *testing.B) {
	benchSweepShared(b, "pipeline_vs_perpoint_jpeg", apps.JPEGEncoderWorkload)
}

var solvesStartedRe = regexp.MustCompile(`(?m)^partitad_solves_started_total (\d+)$`)

// scrapeSolvesStarted reads partitad_solves_started_total off /metrics.
func scrapeSolvesStarted(b *testing.B, base string) int {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	m := solvesStartedRe.FindSubmatch(raw)
	if m == nil {
		b.Fatalf("partitad_solves_started_total missing from /metrics:\n%s", raw)
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkSweepBatchAPIGSM is the end-to-end acceptance benchmark: a
// 64-point GSM sweep through POST /v1/batches must beat 64 independent
// HTTP submits by >= 1.5x wall clock, and resubmitting the identical
// batch against the warm cache must start zero new solves.
func BenchmarkSweepBatchAPIGSM(b *testing.B) {
	const points = 64
	newDaemon := func() (*Server, *httptest.Server) {
		s := New(Config{Workers: 0, QueueDepth: 1024, MaxJobs: 1 << 20, ResultCacheSize: 1024})
		s.Start()
		return s, httptest.NewServer(s.Handler())
	}
	submitJSON := func(ts *httptest.Server, path string, body any) []byte {
		raw, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			b.Fatalf("POST %s: %d %s", path, resp.StatusCode, out)
		}
		return out
	}

	var entry sweepBenchEntry
	entry.Points = points
	for i := 0; i < b.N; i++ {
		// Baseline: 64 independent submits, each waited to completion —
		// what a batch-less client does today.
		s1, ts1 := newDaemon()
		first, err := s1.Submit(JobSpec{Kind: KindAnalyze, Workload: "gsm"})
		if err != nil {
			b.Fatal(err)
		}
		waitDone(b, first)
		gains := sweepGains(first.Result().Analyze.MaxReachableGain, points)

		t0 := time.Now()
		for _, rg := range gains {
			var v JobView
			if err := json.Unmarshal(submitJSON(ts1, "/v1/jobs", JobSpec{
				Kind: KindSelect, Workload: "gsm", RequiredGain: rg,
			}), &v); err != nil {
				b.Fatal(err)
			}
			job, ok := s1.Job(v.ID)
			if !ok {
				b.Fatalf("job %s not tracked", v.ID)
			}
			waitDone(b, job)
		}
		perPoint := time.Since(t0)
		ts1.Close()
		shutdownNow(b, s1)

		// One batch over a fresh daemon: same points, same HTTP surface.
		s2, ts2 := newDaemon()
		warm, err := s2.Submit(JobSpec{Kind: KindAnalyze, Workload: "gsm"})
		if err != nil {
			b.Fatal(err)
		}
		waitDone(b, warm)

		spec := BatchSpec{Defaults: JobSpec{Workload: "gsm"}}
		for _, rg := range gains {
			spec.Points = append(spec.Points, BatchPoint{RequiredGain: rg})
		}
		t0 = time.Now()
		var bv BatchView
		if err := json.Unmarshal(submitJSON(ts2, "/v1/batches", spec), &bv); err != nil {
			b.Fatal(err)
		}
		batch, ok := s2.Batch(bv.ID)
		if !ok {
			b.Fatalf("batch %s not tracked", bv.ID)
		}
		waitBatch(b, batch)
		pipeline := time.Since(t0)

		done := batch.View(false)
		if done.Summary == nil || done.Summary.Failed > 0 {
			b.Fatalf("batch summary: %+v", done.Summary)
		}
		entry.BatchSolved = done.Summary.Solved
		entry.BatchReused = done.Summary.Reused

		// Cache-warm resubmit: identical batch, zero new solves.
		before := scrapeSolvesStarted(b, ts2.URL)
		var rv BatchView
		if err := json.Unmarshal(submitJSON(ts2, "/v1/batches", spec), &rv); err != nil {
			b.Fatal(err)
		}
		rb, ok := s2.Batch(rv.ID)
		if !ok {
			b.Fatalf("resubmitted batch %s not tracked", rv.ID)
		}
		waitBatch(b, rb)
		after := scrapeSolvesStarted(b, ts2.URL)
		rdone := rb.View(false)
		entry.ResubmitZero = after == before
		entry.ResubmitCache = rdone.Summary.Cached
		if after != before {
			b.Fatalf("cache-warm resubmit started %d new solves", after-before)
		}
		ts2.Close()
		shutdownNow(b, s2)

		entry.PerPointSec = perPoint.Seconds()
		entry.PipelineSec = pipeline.Seconds()
		entry.Speedup = perPoint.Seconds() / pipeline.Seconds()
	}
	b.ReportMetric(entry.Speedup, "speedup_x")
	b.ReportMetric(entry.PipelineSec, "batch_sec")
	if entry.Speedup < 1.5 {
		b.Fatalf("batch API speedup %.2fx, want >= 1.5x (per-point %.2fs, batch %.2fs)",
			entry.Speedup, entry.PerPointSec, entry.PipelineSec)
	}
	recordSweepBench(b, "batch_api_vs_submits_gsm", entry)
}
