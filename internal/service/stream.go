package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"partita"
)

// Streaming transport for batch results. Every batch owns an
// append-only event log with monotonically increasing IDs (1, 2, …):
// per-point incumbent progress, point completions, and the terminal
// summary. GET /v1/batches/{id}/events serves the log two ways —
// Server-Sent Events (Accept: text/event-stream) with standard
// Last-Event-ID resume, and a chunked JSON long-poll fallback
// (?after=N&wait=10s) for clients that cannot hold an SSE connection.
// Both are resumable from any event ID, so a reconnecting client never
// loses or re-processes a completion.

// Batch event types.
const (
	// EventProgress is a per-point anytime incumbent — the same
	// incumbent/bound/gap snapshot the single-job poll surface reports.
	EventProgress = "progress"
	// EventPoint is one point's completion (result or error).
	EventPoint = "point"
	// EventSummary is the terminal event: the batch's disposition
	// accounting. It is always the last event of a batch.
	EventSummary = "summary"
	// EventEnd is a synthetic, un-numbered stream terminator sent when
	// the server closes a stream before the batch is done (drain). It
	// never enters the event log; reconnecting clients resume from their
	// last real event ID.
	EventEnd = "end"
)

// BatchEvent is one entry of a batch's event log.
type BatchEvent struct {
	ID   uint64 `json:"id"`
	Type string `json:"type"`
	// Point is the batch point index the event concerns (-1 for the
	// summary).
	Point        int               `json:"point"`
	RequiredGain int64             `json:"requiredGain,omitempty"`
	Progress     *Progress         `json:"progress,omitempty"`
	Result       *BatchPointResult `json:"result,omitempty"`
	Summary      *BatchSummary     `json:"summary,omitempty"`
}

// emitLocked appends one event and wakes every waiting stream; the
// caller holds b.mu (or has exclusive access during replay).
func (b *Batch) emitLocked(ev BatchEvent) {
	ev.ID = uint64(len(b.events)) + 1
	b.events = append(b.events, ev)
	close(b.notify)
	b.notify = make(chan struct{})
}

// emitProgress publishes one point's anytime incumbent.
func (b *Batch) emitProgress(point int, rg int64, in partita.Incumbent) {
	bound, gap := in.Bound, in.Gap
	if !finite(bound) {
		bound = -1
	}
	if !finite(gap) {
		gap = -1
	}
	p := &Progress{IncumbentArea: in.Area, Bound: bound, Gap: gap, Nodes: in.Nodes, Incumbents: 1}
	b.mu.Lock()
	b.emitLocked(BatchEvent{Type: EventProgress, Point: point, RequiredGain: rg, Progress: p})
	b.mu.Unlock()
}

// eventsAfter returns a copy of the events with ID > after, whether the
// batch is terminal, and the channel that closes on the next append.
// The channel is captured together with the events under one lock
// acquisition, so a waiter can never miss an append between reading and
// waiting.
func (b *Batch) eventsAfter(after uint64) ([]BatchEvent, bool, <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var evs []BatchEvent
	if after < uint64(len(b.events)) {
		evs = append(evs, b.events[after:]...)
	}
	return evs, b.status == StatusDone, b.notify
}

// ---- HTTP handlers ----

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var spec BatchSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: batch body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad batch spec: %w", err))
		return
	}
	b, err := s.SubmitBatch(spec)
	switch {
	case errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	case errors.Is(err, ErrQueueFull):
		// Back-pressure per batch: one Retry-After beat, then the
		// content-addressed resubmit is safe and will coalesce with any
		// point that got answered meanwhile.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if b.Done() {
		code = http.StatusOK
	}
	writeJSON(w, code, b.View(false))
}

func (s *Server) handleBatchList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.batchOrder...)
	views := make([]BatchView, 0, len(ids))
	for _, id := range ids {
		views = append(views, s.batches[id].View(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"batches": views})
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such batch %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, b.View(r.URL.Query().Get("points") != "0"))
}

// handleBatchEvents serves a batch's event log. SSE when the client
// asks for text/event-stream, JSON long-poll otherwise; both resume
// after a given event ID (Last-Event-ID header or ?after=N, header
// wins — it is what the browser EventSource and the client package send
// on reconnect).
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such batch %q", r.PathValue("id")))
		return
	}
	after := uint64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad after %q", v))
			return
		}
		after = n
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad Last-Event-ID %q", v))
			return
		}
		after = n
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamSSE(w, r, b, after)
		return
	}
	s.longPollEvents(w, r, b, after)
}

// sseKeepaliveEvery paces comment-line keepalives on idle SSE streams
// so intermediaries do not reap the connection. Variable for tests.
var sseKeepaliveEvery = 15 * time.Second

// streamSSE writes the event log as Server-Sent Events until the batch
// summary has been delivered, the client goes away, or the server
// drains. A drain on an unfinished batch terminates the stream with a
// synthetic "end" event (no ID) so clients distinguish a server-side
// close from a network failure and can resume elsewhere or later.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, b *Batch, after uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("service: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	s.streams.Add(1)
	defer s.streams.Add(-1)

	keepalive := time.NewTicker(sseKeepaliveEvery)
	defer keepalive.Stop()
	for {
		evs, done, wait := b.eventsAfter(after)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data); err != nil {
				return
			}
			after = ev.ID
			s.metrics.EventDelivered()
		}
		flusher.Flush()
		if done && len(evs) == 0 {
			// The summary (always the last logged event) has been
			// delivered; the stream ends cleanly.
			return
		}
		if done {
			continue // deliver any tail appended while writing
		}
		select {
		case <-wait:
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.drain:
			// Flush whatever settled since the last pass, then terminate
			// explicitly: the daemon is going down and this connection
			// will not outlive the grace period.
			if evs, _, _ := b.eventsAfter(after); len(evs) > 0 {
				for _, ev := range evs {
					data, _ := json.Marshal(ev)
					fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
					after = ev.ID
					s.metrics.EventDelivered()
				}
			}
			fmt.Fprintf(w, "event: %s\ndata: {\"reason\":%q}\n\n", EventEnd, ReasonDraining)
			flusher.Flush()
			return
		}
	}
}

// eventPage is the JSON long-poll response: a page of events plus the
// cursor to pass back as ?after=.
type eventPage struct {
	Events []BatchEvent `json:"events"`
	// NextAfter is the cursor for the next request (the last delivered
	// event ID, or the request's cursor when nothing new arrived).
	NextAfter uint64 `json:"nextAfter"`
	// Done mirrors the batch's terminal state: once true and Events is
	// drained, no further events will ever arrive.
	Done bool `json:"done"`
	// Draining marks a page served by a shutting-down server: the client
	// should expect the connection to die and retry against another node
	// or after the restart.
	Draining bool `json:"draining,omitempty"`
}

// longPollEvents is the chunked fallback transport: it returns the
// events after the cursor immediately when there are any, otherwise
// holds the request up to ?wait= (capped like job long-polls) for the
// next append, the batch's end, or a server drain.
func (s *Server) longPollEvents(w http.ResponseWriter, r *http.Request, b *Batch, after uint64) {
	evs, done, wait := b.eventsAfter(after)
	if len(evs) == 0 && !done {
		if wv := r.URL.Query().Get("wait"); wv != "" {
			d, err := time.ParseDuration(wv)
			if err != nil || d < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad wait %q", wv))
				return
			}
			if d > maxLongPollWait {
				d = maxLongPollWait
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-wait:
			case <-t.C:
			case <-r.Context().Done():
			case <-s.drain:
			}
			evs, done, _ = b.eventsAfter(after)
		}
	}
	page := eventPage{Events: evs, NextAfter: after, Done: done, Draining: s.draining.Load()}
	if n := len(evs); n > 0 {
		page.NextAfter = evs[n-1].ID
		for range evs {
			s.metrics.EventDelivered()
		}
	}
	if page.Events == nil {
		page.Events = []BatchEvent{}
	}
	writeJSON(w, http.StatusOK, page)
}
