package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"partita/internal/journal"
)

// The RemoteLookup hook is the cluster's cross-node cache path: a peer
// hit must complete the job as cached, memoize locally, and skip the
// solve entirely.
func TestRemoteLookupServesWithoutSolving(t *testing.T) {
	spec := selectSpec(900)
	key, err := ResultKey(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Solve on a plain server to obtain a genuine result to "cache" on
	// the fake peer.
	donor := newTestServer(t, Config{Workers: 1})
	dj, err := donor.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, dj)
	res := dj.Result()
	if res == nil || res.Selection == nil {
		t.Fatalf("donor result = %+v", res)
	}

	var lookups atomic.Int64
	s := newTestServer(t, Config{
		Workers: 1,
		RemoteLookup: func(k string) (*JobResult, bool) {
			lookups.Add(1)
			if k == key {
				return res, true
			}
			return nil, false
		},
	})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := job.View()
	if v.Status != StatusDone || !v.Cached {
		t.Fatalf("peer-served job view = %+v, want done+cached", v)
	}
	if lookups.Load() == 0 {
		t.Fatal("RemoteLookup was never consulted")
	}
	if got := v.Result.Selection.Area; got != res.Selection.Area {
		t.Errorf("peer-served area = %g, want donor's %g", got, res.Selection.Area)
	}
	// The peer hit must be memoized locally: a resubmission is answered
	// at Submit time without consulting the hook again.
	before := lookups.Load()
	job2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !job2.Done() || lookups.Load() != before {
		t.Errorf("resubmission not served from the local cache (done=%v, lookups %d→%d)",
			job2.Done(), before, lookups.Load())
	}
	// No solve ever started on the peer-served node.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "partitad_solves_started_total 0") {
		t.Error("peer-served node reports a started solve")
	}
}

// A lookup miss must fall through to a normal solve.
func TestRemoteLookupMissSolvesLocally(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:      1,
		RemoteLookup: func(string) (*JobResult, bool) { return nil, false },
	})
	job, err := s.Submit(selectSpec(800))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.View(); v.Status != StatusDone || v.Cached {
		t.Fatalf("view = %+v, want done and not cached", v)
	}
}

// OwnerOf's answer must ride the job view and the journal, and survive
// a replay.
func TestOwnershipRecordedAndReplayed(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "own.wal")
	own := &Ownership{Node: "n2", Owner: "n1", Failover: true}
	s, err := Open(Config{
		Workers:     1,
		JournalPath: wal,
		OwnerOf:     func(string) *Ownership { o := *own; return &o },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	job, err := s.Submit(selectSpec(700))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.View(); v.Cluster == nil || *v.Cluster != *own {
		t.Fatalf("live view cluster = %+v, want %+v", v.Cluster, own)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// The journaled submit record carries the ownership.
	rep, err := journal.ReadAll(wal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range rep.Records {
		if rec.Type != recSubmit {
			continue
		}
		var d submitData
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			t.Fatal(err)
		}
		if d.Owner != nil && *d.Owner == *own {
			found = true
		}
	}
	if !found {
		t.Fatal("no submit record carries the ownership")
	}

	// A replayed server restores it on the job view.
	s2, err := Open(Config{Workers: 1, JournalPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer func() {
		_ = s2.Shutdown(context.Background())
		_ = s2.CloseJournal()
	}()
	j2, ok := s2.Job(job.ID)
	if !ok {
		t.Fatalf("job %s lost across replay", job.ID)
	}
	if v := j2.View(); v.Cluster == nil || *v.Cluster != *own {
		t.Fatalf("replayed view cluster = %+v, want %+v", v.Cluster, own)
	}
}

// readyzBody fetches /readyz and decodes the JSON body.
func readyzBody(t *testing.T, s *Server) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var body map[string]any
	raw, _ := io.ReadAll(rec.Body)
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("readyz body %q: %v", raw, err)
	}
	return rec.Code, body
}

func TestReadyzNamesTheReason(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	code, body := readyzBody(t, s)
	if code != http.StatusOK || body["ready"] != true || body["status"] != "ready" {
		t.Fatalf("ready readyz = %d %v", code, body)
	}
	if _, has := body["reason"]; has {
		t.Errorf("ready body must not carry a reason: %v", body)
	}

	// Leaving the ring is reported before (and instead of) draining.
	s.BeginLeave()
	code, body = readyzBody(t, s)
	if code != http.StatusServiceUnavailable || body["reason"] != ReasonLeavingRing {
		t.Errorf("leaving readyz = %d %v, want 503/%s", code, body, ReasonLeavingRing)
	}
	s.BeginDrain()
	if _, body = readyzBody(t, s); body["reason"] != ReasonLeavingRing {
		t.Errorf("leaving+draining reason = %v, want %s", body["reason"], ReasonLeavingRing)
	}
}

func TestReadyzDrainingReason(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.BeginDrain()
	code, body := readyzBody(t, s)
	if code != http.StatusServiceUnavailable || body["reason"] != ReasonDraining || body["ready"] != false {
		t.Errorf("draining readyz = %d %v", code, body)
	}
}

func TestReadyzReplayingReason(t *testing.T) {
	// New (not Open) with a journal path configured: ready is false
	// until Open's replay finishes, which never happens here.
	s := New(Config{Workers: 1, JournalPath: filepath.Join(t.TempDir(), "x.wal")})
	code, body := readyzBody(t, s)
	if code != http.StatusServiceUnavailable || body["reason"] != ReasonReplaying {
		t.Errorf("replaying readyz = %d %v", code, body)
	}
}
