package encode

import (
	"testing"
	"testing/quick"

	"partita/internal/cinstr"
	"partita/internal/cprog"
	"partita/internal/lower"
	"partita/internal/mop"
)

func compiled(t *testing.T, src string) *mop.Program {
	t.Helper()
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loopSrc = `
int a; int b; int c;
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { a = a + 1; }
	for (i = 0; i < 10; i = i + 1) { b = b + 1; }
	for (i = 0; i < 10; i = i + 1) { c = c + 1; }
	return a + b + c;
}`

func TestBuildAndRoundTrip(t *testing.T) {
	prog := compiled(t, loopSrc)
	cs := cinstr.Mine(prog, nil, cinstr.Config{}).Chosen
	im, err := Build(prog, cs, []string{"fir_accel"})
	if err != nil {
		t.Fatal(err)
	}
	if im.TotalWords <= 0 || im.UniqueWords <= 0 {
		t.Fatalf("bad stats: %+v", im)
	}
	if im.UniqueWords > im.TotalWords {
		t.Errorf("dictionary (%d) larger than program (%d)", im.UniqueWords, im.TotalWords)
	}
	if im.Compression() > 1 {
		t.Errorf("dictionary made the µ-ROM bigger: %.2f", im.Compression())
	}
	if len(im.SRoutines) != 1 || im.SRoutines[0].Name != "fir_accel" {
		t.Errorf("S routines = %+v", im.SRoutines)
	}

	// Round trip: decoding the stream must reproduce the exact packed
	// µ-word sequence of the program.
	var want []string
	for _, f := range prog.SortedFuncs() {
		for _, blk := range f.Blocks {
			for _, w := range mop.PackBlock(blk.Ops) {
				want = append(want, w.String())
			}
		}
	}
	got, err := im.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d words, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("word %d: decoded %s, want %s", i, got[i].String(), want[i])
		}
	}
}

func TestCInstructionsShrinkStream(t *testing.T) {
	prog := compiled(t, loopSrc)
	cs := cinstr.Mine(prog, nil, cinstr.Config{}).Chosen
	if len(cs) == 0 {
		t.Skip("no repetition found (lowering changed)")
	}
	plain, err := Build(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	withC, err := Build(prog, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(withC.Stream) >= len(plain.Stream) {
		t.Errorf("C-instructions did not shrink the stream: %d vs %d",
			len(withC.Stream), len(plain.Stream))
	}
	// Both must decode to the same µ-word sequence.
	a, err := plain.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := withC.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("decode lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("word %d differs after C-compression", i)
		}
	}
}

func TestInstrEncodingRoundTrip(t *testing.T) {
	for _, in := range []Instr{
		{ClassP, 0}, {ClassP, 1023}, {ClassC, 7}, {ClassS, 3},
	} {
		raw, err := encodeInstr(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeInstr(raw)
		if err != nil {
			t.Fatal(err)
		}
		if got != in {
			t.Errorf("roundtrip %+v → %+v", in, got)
		}
	}
}

func TestPackWordRoundTrip(t *testing.T) {
	st := NewSymTab()
	words := []mop.Word{
		{}, // empty (nop) word
	}
	w1 := mop.Word{}
	add := mop.MOP{Op: mop.ADD, Dst: mop.GPR(3), SrcA: mop.GPR(1), SrcB: mop.GPR(2)}
	ld := mop.MOP{Op: mop.LDX, Dst: mop.GPR(4), SrcA: mop.AX(0), Imm: 1}
	w1.Ops[mop.FieldALU] = &add
	w1.Ops[mop.FieldXMem] = &ld
	words = append(words, w1)

	w2 := mop.Word{}
	br := mop.MOP{Op: mop.BNE, Sym: "loop_head"}
	ldi := mop.MOP{Op: mop.LDI, Dst: mop.GPR(0), Imm: -123456}
	w2.Ops[mop.FieldSeq] = &br
	w2.Ops[mop.FieldMove] = &ldi
	words = append(words, w2)

	w3 := mop.Word{}
	ret := mop.MOP{Op: mop.RET}
	w3.Ops[mop.FieldSeq] = &ret
	words = append(words, w3)

	for i, w := range words {
		limbs := PackWord(&w, st)
		got, err := UnpackWord(limbs, st)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		if got.String() != w.String() {
			t.Errorf("word %d: %s → %s", i, w.String(), got.String())
		}
	}
}

func TestPackMOPRoundTripQuick(t *testing.T) {
	f := func(op uint8, dst, a, b int8, imm int32, abs bool) bool {
		m := &mop.MOP{
			Op:   mop.Opcode(int(op) % 30),
			Dst:  mop.Reg(int(dst)%mop.NumRegs + -1), // includes RegNone
			SrcA: mop.Reg(int(a) % mop.NumRegs),
			SrcB: mop.Reg(int(b) % mop.NumRegs),
			// The packed immediate field is 30 bits (offset-binary), so
			// constrain the generator to the representable range.
			Imm: int64(imm % (1 << 28)),
			Abs: abs,
		}
		if m.Dst < -1 {
			m.Dst = mop.RegNone
		}
		if m.SrcA < 0 {
			m.SrcA = -m.SrcA
		}
		if m.SrcB < 0 {
			m.SrcB = -m.SrcB
		}
		enc := packMOP(m)
		got, err := unpackMOP(enc)
		if err != nil {
			return false
		}
		return got.Op == m.Op && got.Dst == m.Dst && got.SrcA == m.SrcA &&
			got.SrcB == m.SrcB && got.Imm == m.Imm && got.Abs == m.Abs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriteHex(t *testing.T) {
	im := func() *Image {
		prog := compiled(t, loopSrc)
		cs := cinstr.Mine(prog, nil, cinstr.Config{}).Chosen
		im, err := Build(prog, cs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return im
	}()
	instr, urom := im.WriteHex()
	instrLines := nonComment(instr)
	if len(instrLines) != len(im.Stream) {
		t.Errorf("instr hex has %d lines, want %d", len(instrLines), len(im.Stream))
	}
	for _, l := range instrLines {
		if len(l) != 8 {
			t.Errorf("instruction line %q not 8 hex digits", l)
		}
	}
	uromLines := nonComment(urom)
	if len(uromLines) != im.UniqueWords {
		t.Errorf("µ-ROM hex has %d lines, want %d", len(uromLines), im.UniqueWords)
	}
}

func nonComment(s string) []string {
	var out []string
	for _, l := range splitLines(s) {
		if l == "" || l[0] == '/' {
			continue
		}
		out = append(out, l)
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestSymTab(t *testing.T) {
	st := NewSymTab()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Error("distinct symbols share an index")
	}
	if again := st.Intern("alpha"); again != a {
		t.Error("re-interning changed the index")
	}
	if s, ok := st.Lookup(b); !ok || s != "beta" {
		t.Errorf("Lookup(%d) = %q, %v", b, s, ok)
	}
	if _, ok := st.Lookup(99); ok {
		t.Error("out-of-range lookup succeeded")
	}
}

func TestBuildErrors(t *testing.T) {
	prog := compiled(t, loopSrc)
	bad := []*cinstr.CInstr{{ID: "C0", Len: 2}}
	if _, err := Build(prog, bad, nil); err == nil {
		t.Error("C-instruction without sites accepted")
	}
	bad = []*cinstr.CInstr{{ID: "C0", Len: 2, Sites: []cinstr.Site{{Fn: "nope", Block: "x"}}}}
	if _, err := Build(prog, bad, nil); err == nil {
		t.Error("unknown function accepted")
	}
}
