// Package encode implements the back end of the Partita flow (Choi et
// al., DAC 1999, Section 2): after P/C/S-instruction generation, "all
// newly generated instructions are encoded in the instruction space, and
// the µ-ROM is optimized with including the µ-codes for the C- and
// S-instructions", and the decode/fetch units are synthesized around the
// result.
//
// The model here is a µ-programmed instruction space:
//
//   - every packed µ-word of the program becomes a P-class instruction
//     word that names its µ-word in a deduplicated dictionary (µ-ROM
//     optimization: identical µ-words are stored once);
//   - each generated C-instruction is one opcode whose body (a µ-word
//     sequence) is placed in the µ-ROM once and expanded by the decoder;
//   - each S-instruction is one opcode bound to an interface routine.
//
// Instruction words are 32 bits: 2 class bits, 10 opcode/index-page
// bits, 20 operand bits. µ-words are bit-packed at 58 bits per occupied
// field plus an 8-bit presence mask. Encoding and decoding round-trip
// exactly; the decode tables double as the synthesized decoder model.
package encode

import (
	"fmt"
	"strings"

	"partita/internal/cinstr"
	"partita/internal/mop"
)

// Class is the instruction class of the target ASIP.
type Class int

const (
	// ClassP instructions execute one µ-word.
	ClassP Class = iota
	// ClassC instructions expand to a µ-ROM routine (C-instruction).
	ClassC
	// ClassS instructions trigger an IP through its interface.
	ClassS
)

func (c Class) String() string {
	switch c {
	case ClassP:
		return "P"
	case ClassC:
		return "C"
	case ClassS:
		return "S"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// fieldBits is the packed size of one occupied µ-word field:
// opcode(6) dst(7) srcA(7) srcB(7) abs(1) imm(30).
const fieldBits = 58

// maskBits is the per-word field presence mask.
const maskBits = 8

// instrWidth is the instruction word width.
const instrWidth = 32

// Instr is one decoded instruction-stream entry.
type Instr struct {
	Class Class
	// Opcode indexes the class's decode table: the µ-word dictionary
	// for P, the C-routine table for C, the S-routine table for S.
	Opcode int
}

// CRoutine is a C-instruction body placed in µ-ROM.
type CRoutine struct {
	ID string
	// Words indexes the µ-word dictionary, one entry per body word.
	Words []int
}

// SRoutine is an S-instruction binding.
type SRoutine struct {
	Name string
}

// Image is the encoded program.
type Image struct {
	// Stream is the encoded instruction memory, one uint32 per
	// instruction, in function/block order.
	Stream []uint32
	// StreamIndex locates each function's first instruction.
	StreamIndex map[string]int

	// Dict is the deduplicated µ-word dictionary (the optimized µ-ROM
	// payload for P-class execution).
	Dict []mop.Word
	// CRoutines and SRoutines are the class decode tables.
	CRoutines []CRoutine
	SRoutines []SRoutine

	// Statistics.
	TotalWords      int // packed µ-words before encoding
	UniqueWords     int // dictionary entries
	RawMicroBits    int // µ-ROM bits without dictionary sharing
	OptMicroBits    int // µ-ROM bits with the dictionary
	InstrMemoryBits int // instruction-stream bits
}

// Compression reports the µ-ROM size ratio achieved by deduplication.
func (im *Image) Compression() float64 {
	if im.RawMicroBits == 0 {
		return 1
	}
	return float64(im.OptMicroBits) / float64(im.RawMicroBits)
}

// Build encodes prog with the given C-instructions (from package cinstr)
// and S-instruction names. C-instruction sites are collapsed to single
// C-class instruction words.
func Build(prog *mop.Program, cs []*cinstr.CInstr, sNames []string) (*Image, error) {
	im := &Image{StreamIndex: map[string]int{}}
	dictIndex := map[string]int{}

	internWord := func(w mop.Word) int {
		key := wordKey(&w)
		if i, ok := dictIndex[key]; ok {
			return i
		}
		dictIndex[key] = len(im.Dict)
		im.Dict = append(im.Dict, w)
		return len(im.Dict) - 1
	}

	// Index C-instruction sites: (fn, block, offset) → (cIdx, len).
	type siteKey struct {
		fn, block string
		off       int
	}
	cAt := map[siteKey]int{}
	for ci, c := range cs {
		for _, s := range c.Sites {
			cAt[siteKey{s.Fn, s.Block, s.Offset}] = ci
		}
	}

	// Pre-place C routine bodies by interning their words from a first
	// pass over the program (bodies are defined by their first site).
	bodies := make([][]int, len(cs))
	for ci, c := range cs {
		if len(c.Sites) == 0 {
			return nil, fmt.Errorf("encode: C-instruction %s has no sites", c.ID)
		}
		s := c.Sites[0]
		f := prog.Function(s.Fn)
		if f == nil {
			return nil, fmt.Errorf("encode: C-instruction %s references unknown function %q", c.ID, s.Fn)
		}
		blk := f.Block(s.Block)
		if blk == nil {
			return nil, fmt.Errorf("encode: C-instruction %s references unknown block %s/%s", c.ID, s.Fn, s.Block)
		}
		words := mop.PackBlock(blk.Ops)
		if s.Offset+c.Len > len(words) {
			return nil, fmt.Errorf("encode: C-instruction %s site out of range", c.ID)
		}
		idx := make([]int, c.Len)
		for i := 0; i < c.Len; i++ {
			idx[i] = internWord(words[s.Offset+i])
		}
		bodies[ci] = idx
		im.CRoutines = append(im.CRoutines, CRoutine{ID: c.ID, Words: idx})
	}
	for _, n := range sNames {
		im.SRoutines = append(im.SRoutines, SRoutine{Name: n})
	}

	// Encode the stream.
	for _, f := range prog.SortedFuncs() {
		im.StreamIndex[f.Name] = len(im.Stream)
		for _, blk := range f.Blocks {
			words := mop.PackBlock(blk.Ops)
			im.TotalWords += len(words)
			for off := 0; off < len(words); {
				if ci, ok := cAt[siteKey{f.Name, blk.Label, off}]; ok {
					enc, err := encodeInstr(Instr{Class: ClassC, Opcode: ci})
					if err != nil {
						return nil, err
					}
					im.Stream = append(im.Stream, enc)
					off += cs[ci].Len
					continue
				}
				di := internWord(words[off])
				enc, err := encodeInstr(Instr{Class: ClassP, Opcode: di})
				if err != nil {
					return nil, err
				}
				im.Stream = append(im.Stream, enc)
				off++
			}
		}
	}

	im.UniqueWords = len(im.Dict)
	im.RawMicroBits = im.TotalWords * wordBitsMax()
	im.OptMicroBits = im.UniqueWords * wordBitsMax()
	for _, r := range im.CRoutines {
		// Routine tables add one dictionary pointer per body word.
		im.OptMicroBits += len(r.Words) * dictPtrBits(im.UniqueWords)
	}
	im.InstrMemoryBits = len(im.Stream) * instrWidth
	return im, nil
}

// DecodeAll expands the instruction stream back into µ-word sequences
// (P-words inline, C routines expanded) — the fetch/decode-unit model
// and the round-trip check used by the tests.
func (im *Image) DecodeAll() ([]mop.Word, error) {
	var out []mop.Word
	for _, raw := range im.Stream {
		in, err := decodeInstr(raw)
		if err != nil {
			return nil, err
		}
		switch in.Class {
		case ClassP:
			if in.Opcode >= len(im.Dict) {
				return nil, fmt.Errorf("encode: P opcode %d outside dictionary", in.Opcode)
			}
			out = append(out, im.Dict[in.Opcode])
		case ClassC:
			if in.Opcode >= len(im.CRoutines) {
				return nil, fmt.Errorf("encode: C opcode %d outside routine table", in.Opcode)
			}
			for _, wi := range im.CRoutines[in.Opcode].Words {
				out = append(out, im.Dict[wi])
			}
		case ClassS:
			return nil, fmt.Errorf("encode: S-instruction in P/C stream")
		}
	}
	return out, nil
}

// WriteHex renders the image as Verilog $readmemh-style files: the
// instruction stream and the µ-ROM dictionary (packed limbs). It is the
// load format for the generated decode unit of package hwgen.
func (im *Image) WriteHex() (instrMem, microROM string) {
	var sb strings.Builder
	sb.WriteString("// instruction memory, one 32-bit word per line\n")
	for _, w := range im.Stream {
		fmt.Fprintf(&sb, "%08x\n", w)
	}
	instrMem = sb.String()

	st := NewSymTab()
	var mb strings.Builder
	mb.WriteString("// µ-ROM dictionary, packed µ-words (limb count, then limbs)\n")
	for i := range im.Dict {
		limbs := PackWord(&im.Dict[i], st)
		fmt.Fprintf(&mb, "%02x", len(limbs))
		for _, l := range limbs {
			fmt.Fprintf(&mb, " %016x", l)
		}
		mb.WriteString("\n")
	}
	microROM = mb.String()
	return
}

// encodeInstr packs an instruction into 32 bits.
func encodeInstr(in Instr) (uint32, error) {
	if in.Opcode < 0 || in.Opcode >= 1<<30 {
		return 0, fmt.Errorf("encode: opcode %d out of range", in.Opcode)
	}
	return uint32(in.Class)<<30 | uint32(in.Opcode), nil
}

func decodeInstr(raw uint32) (Instr, error) {
	c := Class(raw >> 30)
	if c > ClassS {
		return Instr{}, fmt.Errorf("encode: bad class bits %d", c)
	}
	return Instr{Class: c, Opcode: int(raw & (1<<30 - 1))}, nil
}

// wordBitsMax is the worst-case packed µ-word size (all fields present).
func wordBitsMax() int { return maskBits + int(mop.NumFields)*fieldBits }

// dictPtrBits is the width of a dictionary index.
func dictPtrBits(entries int) int {
	bits := 1
	for 1<<bits < entries {
		bits++
	}
	return bits
}

// wordKey canonically renders a µ-word for deduplication.
func wordKey(w *mop.Word) string {
	var parts []string
	for f := mop.Field(0); f < mop.NumFields; f++ {
		if w.Ops[f] != nil {
			parts = append(parts, fmt.Sprintf("%d:%s", f, w.Ops[f]))
		}
	}
	return strings.Join(parts, ";")
}

// SymTab interns branch/call target symbols so µ-words can be bit-packed
// losslessly (sequencer operations carry a symbol index in their
// immediate field, which they do not otherwise use).
type SymTab struct {
	Syms  []string
	index map[string]int
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab { return &SymTab{index: map[string]int{}} }

// Intern returns the stable index of sym.
func (st *SymTab) Intern(sym string) int {
	if i, ok := st.index[sym]; ok {
		return i
	}
	st.index[sym] = len(st.Syms)
	st.Syms = append(st.Syms, sym)
	return len(st.Syms) - 1
}

// Lookup returns the symbol at index i.
func (st *SymTab) Lookup(i int) (string, bool) {
	if i < 0 || i >= len(st.Syms) {
		return "", false
	}
	return st.Syms[i], true
}

// PackWord bit-packs one µ-word into uint64 limbs (presence mask in the
// first limb, then 58-bit fields in field order). It is the bit-exact
// µ-ROM layout; UnpackWord inverts it. Sequencer symbols are interned
// through st.
func PackWord(w *mop.Word, st *SymTab) []uint64 {
	var mask uint64
	var fields []uint64
	for f := mop.Field(0); f < mop.NumFields; f++ {
		if w.Ops[f] == nil {
			continue
		}
		mask |= 1 << uint(f)
		op := *w.Ops[f]
		if op.Sym != "" {
			op.Imm = int64(st.Intern(op.Sym))
		}
		fields = append(fields, packMOP(&op))
	}
	// Layout: limb0 = mask (8 bits) | first 56 bits of field data...
	// For simplicity each field gets its own limb (58 < 64), with the
	// mask in a leading limb. Dense enough for size accounting while
	// staying trivially invertible.
	out := make([]uint64, 0, len(fields)+1)
	out = append(out, mask)
	out = append(out, fields...)
	return out
}

// UnpackWord inverts PackWord, resolving sequencer symbols through st.
func UnpackWord(limbs []uint64, st *SymTab) (mop.Word, error) {
	var w mop.Word
	if len(limbs) == 0 {
		return w, fmt.Errorf("encode: empty µ-word")
	}
	mask := limbs[0]
	li := 1
	for f := mop.Field(0); f < mop.NumFields; f++ {
		if mask&(1<<uint(f)) == 0 {
			continue
		}
		if li >= len(limbs) {
			return w, fmt.Errorf("encode: truncated µ-word")
		}
		op, err := unpackMOP(limbs[li])
		if err != nil {
			return w, err
		}
		if f == mop.FieldSeq && op.Op != mop.RET {
			sym, ok := st.Lookup(int(op.Imm))
			if !ok {
				return w, fmt.Errorf("encode: symbol index %d out of range", op.Imm)
			}
			op.Sym = sym
			op.Imm = 0
		}
		w.Ops[f] = op
		li++
	}
	return w, nil
}

// packMOP packs one µ-operation: op(6) dst(7) srcA(7) srcB(7) abs(1)
// imm(30, offset-binary ±2^29).
func packMOP(m *mop.MOP) uint64 {
	const immBias = 1 << 29
	imm := m.Imm + immBias
	if imm < 0 {
		imm = 0
	}
	if imm >= 1<<30 {
		imm = 1<<30 - 1
	}
	enc := uint64(m.Op) & 0x3f
	enc |= (uint64(m.Dst+1) & 0x7f) << 6
	enc |= (uint64(m.SrcA+1) & 0x7f) << 13
	enc |= (uint64(m.SrcB+1) & 0x7f) << 20
	if m.Abs {
		enc |= 1 << 27
	}
	enc |= uint64(imm) << 28
	return enc
}

func unpackMOP(enc uint64) (*mop.MOP, error) {
	const immBias = 1 << 29
	m := &mop.MOP{}
	m.Op = mop.Opcode(enc & 0x3f)
	m.Dst = mop.Reg(int64(enc>>6&0x7f) - 1)
	m.SrcA = mop.Reg(int64(enc>>13&0x7f) - 1)
	m.SrcB = mop.Reg(int64(enc>>20&0x7f) - 1)
	m.Abs = enc>>27&1 == 1
	m.Imm = int64(enc>>28) - immBias
	return m, nil
}
