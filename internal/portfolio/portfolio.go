// Package portfolio races independent selection engines — the greedy
// baseline, LP-relaxation + rounding, and the exact parallel branch and
// bound — over one shared selector.Analysis and delivers the first
// *acceptable* answer while the exact proof keeps streaming in behind
// it.
//
// Acceptability is a bound argument, not a hunch: a candidate selection
// with area A is acceptable once the best proven lower bound L on the
// optimal area (from the LP relaxation or the exact engine's incumbent
// stream) satisfies (A − L) / max(1, A) ≤ Config.Gap. A proven result —
// the exact engine's optimum, or an infeasibility proof from either the
// LP relaxation or the exact search — is always acceptable and also
// settles the race: remaining engines are canceled through the shared
// context the moment a proof lands.
//
// Incremental re-solve (Reselect) layers a selector.Delta onto the
// shared analysis (copy-on-write — unchanged per-path coefficient rows
// are reused by reference) and seeds every engine from the previous
// Selection via ilp.Model.SetWarmStart, so an edit solve starts from
// the old answer instead of from scratch. Seeds are validated against
// the edited model and can only tighten pruning, never change the
// settled answer: with Gap 0 the portfolio's settled result is the
// exact solver's, byte for byte.
package portfolio

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"partita/internal/ilp"
	"partita/internal/selector"
)

// Engine names one racing engine.
type Engine string

const (
	// Greedy is the gain/area-ratio baseline (selector.GreedyBaseline):
	// microseconds, no proof, no bound.
	Greedy Engine = "greedy"
	// LPRound solves one LP relaxation and rounds (ilp.SolveLPRound):
	// milliseconds, carries the LP lower bound, proves infeasibility.
	LPRound Engine = "lpround"
	// Exact is the parallel branch and bound: the only engine that
	// proves optimality.
	Exact Engine = "exact"
	// Seed is not a solver: on an incremental re-solve it is the
	// previous selection re-priced under the edited analysis
	// (selector.Analysis.Evaluate) and offered before any engine has
	// started. With a carried-over proven floor it is usually the race
	// winner — the designer's old answer, re-validated in microseconds.
	Seed Engine = "seed"
	// Capacity is the covering-knapsack bound's witness
	// (selector.Analysis.CapacityWitness): the IP subset that proves
	// the instant area floor, instantiated into a selection and offered
	// at race start. On models where the enriched knapsack is tight it
	// delivers an optimal-area answer microseconds into a cold race.
	Capacity Engine = "capacity"
)

// Engines lists every racing engine, in cost order.
var Engines = []Engine{Seed, Capacity, Greedy, LPRound, Exact}

// Config tunes one race.
type Config struct {
	// Gap is the relative area gap at which a bounded candidate becomes
	// acceptable; 0 accepts only proven results.
	Gap float64
	// OnIncumbent, when non-nil, streams the exact engine's anytime
	// incumbents (serialized; same contract as Problem.OnIncumbent).
	OnIncumbent func(selector.Incumbent)
	// OnFirst, when non-nil, is invoked exactly once — from whichever
	// engine goroutine crossed the threshold — when the first acceptable
	// answer lands. It must be fast; the race continues behind it.
	OnFirst func(Answer)
}

// Answer is one delivered answer of a race.
type Answer struct {
	// Engine produced the answer.
	Engine Engine
	Sel    *selector.Selection
	// Gap is the proven relative area gap at delivery time (0 for
	// proven results).
	Gap float64
	// Elapsed is the time from race start to delivery.
	Elapsed time.Duration
}

// Result is the settled outcome of a race.
type Result struct {
	// Sel is the settled selection: the exact engine's result when it
	// finished (proven, or its best anytime incumbent), otherwise the
	// best bounded candidate another engine produced.
	Sel *selector.Selection
	// Engine produced Sel.
	Engine Engine
	// Gap is the settled relative area gap (0 when proven).
	Gap float64
	// First is the race winner: the first acceptable answer delivered.
	// When no engine crossed the threshold before the race settled,
	// First is the settled answer itself.
	First Answer
	// Settled is the time from race start to the settled result.
	Settled time.Duration
	// Confirmed reports that the race settled with a proof and the
	// proof agrees with the first answer (same optimal area, or both
	// infeasible) — i.e. the fast answer the caller may already have
	// acted on was right.
	Confirmed bool
	// Seeded reports that the engines were warm-started from a previous
	// selection (an incremental re-solve).
	Seeded bool
}

// state is the shared blackboard of one race.
type state struct {
	mu    sync.Mutex
	cfg   Config
	start time.Time

	lower     float64 // best proven lower bound on the optimal area
	bestSel   *selector.Selection
	bestEng   Engine
	infeas    bool // some engine proved infeasibility
	infeasEng Engine

	first   *Answer
	deliver func(Answer) // cfg.OnFirst, called outside mu
}

// relGap is the portfolio's acceptability metric: the relative gap of
// area A against lower bound L, +Inf when no finite bound exists.
func relGap(area, lower float64) float64 {
	if math.IsInf(lower, 0) || math.IsNaN(lower) {
		return math.Inf(1)
	}
	g := (area - lower) / math.Max(1, area)
	if g < 0 {
		return 0
	}
	return g
}

// raiseLower folds a proven lower bound in and re-checks acceptability.
// Callers hold no lock.
func (st *state) raiseLower(lb float64) {
	if math.IsInf(lb, 0) || math.IsNaN(lb) {
		return
	}
	st.mu.Lock()
	if lb > st.lower {
		st.lower = lb
	}
	a := st.checkFirstLocked(false, Engine(""), nil)
	st.mu.Unlock()
	if a != nil && st.deliver != nil {
		st.deliver(*a)
	}
}

// offer proposes a bounded candidate selection. proven marks a finished
// proof (exact optimum or an infeasibility proof), which settles the
// race. Callers hold no lock.
func (st *state) offer(eng Engine, sel *selector.Selection, proven bool) {
	st.mu.Lock()
	switch sel.Status {
	case ilp.Infeasible:
		if proven {
			st.infeas = true
			st.infeasEng = eng
		}
	case ilp.Optimal, ilp.Feasible:
		if sel.Degraded == "" && (st.bestSel == nil || sel.Area < st.bestSel.Area) {
			st.bestSel, st.bestEng = sel, eng
		}
		if proven && sel.Status == ilp.Optimal {
			// The proven optimum is its own lower bound.
			if sel.Area > st.lower {
				st.lower = sel.Area
			}
		}
	}
	a := st.checkFirstLocked(proven, eng, sel)
	st.mu.Unlock()
	if a != nil && st.deliver != nil {
		st.deliver(*a)
	}
}

// checkFirstLocked records the first-acceptable answer once — either
// the proposing engine just delivered a proof, or the best bounded
// candidate now sits within the gap threshold — and returns it for the
// caller to deliver outside the lock (so OnFirst runs on the engine
// goroutine that crossed the threshold, never under mu, never twice).
func (st *state) checkFirstLocked(proven bool, eng Engine, sel *selector.Selection) *Answer {
	if st.first != nil {
		return nil
	}
	var a Answer
	switch {
	case proven && sel != nil && (sel.Status == ilp.Infeasible || sel.Status == ilp.Optimal):
		a = Answer{Engine: eng, Sel: sel, Gap: 0}
	case st.bestSel != nil && relGap(st.bestSel.Area, st.lower) <= st.cfg.Gap:
		a = Answer{Engine: st.bestEng, Sel: st.bestSel, Gap: relGap(st.bestSel.Area, st.lower)}
	default:
		return nil
	}
	a.Elapsed = time.Since(st.start)
	st.first = &a
	return &a
}

// Run races the engines over an (optionally Delta-derived) analysis.
// seed, when non-nil, warm-starts the LP and exact engines from a
// previous selection. Run returns when the race settles: a proof
// arrived (losers are canceled), every engine returned, or ctx expired
// with at least one candidate in hand. With no candidate and no proof,
// the first engine error (preferring the exact engine's) is returned.
func Run(ctx context.Context, an *selector.Analysis, p selector.Problem, seed *selector.Selection, cfg Config) (*Result, error) {
	if p.DB == nil {
		p.DB = an.DB()
	}
	st := &state{
		cfg:     cfg,
		start:   time.Now(),
		lower:   math.Inf(-1),
		deliver: cfg.OnFirst,
	}
	if f := p.AreaFloor(); f > 0 {
		// An incremental re-solve's proven floor is a head start for the
		// acceptability test: candidates are judged against it from the
		// first microsecond, not only once the LP bound lands.
		st.lower = f
	}
	// The IP-level covering-knapsack bound (selector.CapacityWitness) is
	// a proven area floor computed in microseconds, before any engine
	// has built a model: the judge holds it from the start, and when it
	// beats the carried-over floor it also tightens the exact engine's
	// pass-1 cut. Valid cuts never move the optimum, so the settled
	// result stays byte-for-byte. The bound's witness selection, when it
	// re-prices feasible, races as the first candidate — on models where
	// the knapsack is tight, candidate and floor meet instantly and the
	// race is won before any model is built.
	qb, qw := an.CapacityWitness(p)
	if qb > 0 && !math.IsInf(qb, 0) {
		if qb > st.lower {
			st.lower = qb
		}
		if qb > p.AreaFloor() {
			p.SetAreaFloor(qb)
		}
	}
	if qw != nil {
		st.offer(Capacity, qw, false)
	}
	if seed != nil {
		// Re-price the previous answer under the edited analysis and race
		// it from the first microsecond: against a carried-over floor it
		// is often acceptable before any engine has produced a node.
		if ev := an.Evaluate(p, seed); ev != nil {
			st.offer(Seed, ev, false)
		}
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	var exactSel *selector.Selection
	var exactErr, lpErr error

	// Greedy: instant, unproven. Its "Optimal" status only means the
	// requirement was met; demote before anyone can mistake it for a
	// proof.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := an.Greedy(p)
		if g.Status == ilp.Optimal {
			g = cloneAs(g, ilp.Feasible)
		}
		if g.Status == ilp.Feasible {
			st.offer(Greedy, g, false)
		}
		// A greedy Infeasible proves nothing; drop it.
	}()

	// LP + rounding: one simplex solve; its bound is what usually makes
	// another engine's candidate acceptable. An infeasible relaxation is
	// a proof and settles the race. Even a failed rounding still carries
	// the proven LP bound (raiseLower ignores the non-finite bound of a
	// relaxation that never solved). On a single-CPU host the engine is
	// not raced: racing is time-slicing there, and the standalone root
	// relaxation duplicates the exact engine's own root node — its only
	// effect is to push the first exact incumbent later.
	if runtime.GOMAXPROCS(0) > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sel, bound, err := an.LPRound(raceCtx, p, seed)
			if err != nil {
				st.raiseLower(bound)
				lpErr = err
				return
			}
			st.raiseLower(bound)
			switch sel.Status {
			case ilp.Infeasible:
				st.offer(LPRound, sel, true)
				cancel()
			case ilp.Feasible:
				st.offer(LPRound, sel, false)
			}
		}()
	}

	// Exact: streams incumbents — each one both raises the proven bound
	// and races as a candidate in its own right, which is what makes the
	// portfolio genuinely anytime: branch and bound typically finds the
	// optimum early and spends the rest of the solve proving it, so the
	// first acceptable answer usually lands orders of magnitude before
	// the proof that settles the race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p2 := p
		obs := cfg.OnIncumbent
		p2.OnIncumbent = func(inc selector.Incumbent) {
			st.raiseLower(inc.Bound)
			if inc.Sel != nil {
				st.offer(Exact, inc.Sel, false)
			}
			if obs != nil {
				obs(inc)
			}
		}
		p2.OnBound = st.raiseLower
		sel, err := an.SolveSeeded(raceCtx, p2, seed)
		if err != nil {
			exactErr = err
			return
		}
		exactSel = sel
		proven := sel.Degraded == "" && (sel.Status == ilp.Optimal || sel.Status == ilp.Infeasible)
		st.offer(Exact, sel, proven)
		if proven {
			cancel()
		}
	}()

	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	res := &Result{Settled: time.Since(st.start), Seeded: seed != nil}

	switch {
	case exactSel != nil && exactSel.Degraded == "" &&
		(exactSel.Status == ilp.Optimal || exactSel.Status == ilp.Infeasible):
		// Proven: the settled answer is the exact engine's, byte for
		// byte — this is what makes the gap-0 portfolio equivalent to a
		// cold exact solve.
		res.Sel, res.Engine, res.Gap = exactSel, Exact, 0
	case st.infeas:
		res.Sel = &selector.Selection{Status: ilp.Infeasible}
		res.Engine, res.Gap = st.infeasEng, 0
	case exactSel != nil && exactSel.Status == ilp.Feasible && exactSel.Degraded == "" &&
		(st.bestSel == nil || exactSel.Area <= st.bestSel.Area):
		// Anytime incumbent from a spent budget: prefer it over equal-
		// area heuristics (it carries the search's own gap).
		res.Sel, res.Engine = exactSel, Exact
		res.Gap = relGap(exactSel.Area, st.lower)
		if exactSel.Gap < res.Gap {
			res.Gap = exactSel.Gap
		}
	case st.bestSel != nil:
		res.Sel, res.Engine = st.bestSel, st.bestEng
		res.Gap = relGap(st.bestSel.Area, st.lower)
	case exactSel != nil:
		// Degraded greedy fallback from the exact path: better than an
		// error under an exhausted budget.
		res.Sel, res.Engine = exactSel, Exact
		res.Gap = math.Inf(1)
	default:
		if exactErr != nil {
			return nil, exactErr
		}
		if lpErr != nil && !errors.Is(lpErr, ilp.ErrNoRounding) && !errors.Is(lpErr, context.Canceled) {
			return nil, lpErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("portfolio: no engine produced an answer")
	}

	if res.Sel != nil && res.Sel.Status == ilp.Feasible && res.Sel.Gap < res.Gap {
		res.Gap = res.Sel.Gap
	}
	if res.Sel != nil && res.Sel.Status == ilp.Feasible && !math.IsInf(res.Gap, 0) {
		cp := *res.Sel
		cp.Gap = res.Gap
		res.Sel = &cp
	}

	if st.first != nil {
		res.First = *st.first
	} else {
		res.First = Answer{Engine: res.Engine, Sel: res.Sel, Gap: res.Gap, Elapsed: res.Settled}
	}
	res.Confirmed = settledConfirms(res)
	return res, nil
}

// settledConfirms reports whether the settled proof agrees with the
// first-delivered answer: both infeasible, or the first answer's area
// equals the proven optimal area.
func settledConfirms(r *Result) bool {
	if r.Sel == nil || r.First.Sel == nil {
		return false
	}
	proven := r.Gap == 0 &&
		(r.Sel.Status == ilp.Infeasible || (r.Sel.Status == ilp.Optimal && r.Sel.Degraded == ""))
	if !proven {
		return false
	}
	if r.Sel.Status == ilp.Infeasible {
		return r.First.Sel.Status == ilp.Infeasible
	}
	return r.First.Sel.Status != ilp.Infeasible &&
		math.Abs(r.First.Sel.Area-r.Sel.Area) <= 1e-9
}

// cloneAs copies a selection with a different status.
func cloneAs(s *selector.Selection, st ilp.Status) *selector.Selection {
	cp := *s
	cp.Status = st
	return &cp
}

// Reselect is the incremental re-solve: apply d to the shared analysis
// and problem (copy-on-write; unchanged coefficient rows are shared by
// reference) and race the engines seeded from the previous selection.
// It returns the race result together with the derived analysis so the
// caller can chain further edits off it. prev may be nil (a cold
// portfolio solve of the edited problem).
func Reselect(ctx context.Context, an *selector.Analysis, prev *selector.Selection, d selector.Delta, p selector.Problem, cfg Config) (*Result, *selector.Analysis, error) {
	na, err := an.Apply(d)
	if err != nil {
		return nil, nil, err
	}
	orig := p
	p, err = na.ApplyProblem(d, p)
	if err != nil {
		return nil, nil, err
	}
	p.DB = na.DB()
	// A proven previous optimum survives the edit as an area floor when
	// the edit can only shrink the feasible set or shift areas: the new
	// optimum cannot drop below prev.Area minus the total possible area
	// decrease. The floor is both a pass-1 cut (the exact engine prunes
	// at it) and the race's opening lower bound, which is what makes a
	// warm re-solve after a small edit settle in a fraction of a cold
	// one. Conservatively skipped whenever a gain rose or a requirement
	// loosened — correctness never depends on the floor being available.
	if prev != nil && prev.Status == ilp.Optimal && prev.Degraded == "" {
		if shrink, ok := an.FloorShrink(d); ok && !loosened(len(na.DB().Paths), orig, p) {
			if f := prev.Area - shrink; f > 0 {
				p.SetAreaFloor(f)
			}
		}
	}
	res, err := Run(ctx, na, p, prev, cfg)
	if err != nil {
		return nil, na, err
	}
	return res, na, nil
}

// loosened reports whether any path's effective required gain dropped
// from old to new — the edit direction that invalidates a previous
// optimum as a floor (a looser requirement can admit cheaper covers).
func loosened(nPaths int, old, new selector.Problem) bool {
	eff := func(p selector.Problem, k int) int64 {
		if k < len(p.PerPath) && p.PerPath[k] >= 0 {
			return p.PerPath[k]
		}
		return p.Required
	}
	for k := 0; k < nPaths; k++ {
		if eff(new, k) < eff(old, k) {
			return true
		}
	}
	return false
}
