package portfolio

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"partita/internal/apps"
	"partita/internal/budget"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
	"partita/internal/selector"
)

// portfolioLevels mirrors the acceptance criterion: the gap-0 portfolio
// must match the exact solver at parallelism 1, 2, and 4.
var portfolioLevels = []int{1, 2, 4}

func mkIP(id string, area float64) *ip.IP {
	return &ip.IP{ID: id, Name: id, Funcs: []string{"f"}, InPorts: 1, OutPorts: 1,
		InRate: 1, OutRate: 1, Latency: 1, Pipelined: true, Area: area}
}

// assertSettledMatchesExact compares a gap-0 settled race against the
// cold exact solve of the same problem: identical status, and for
// solved instances identical area (byte for byte), gain, and
// S-instruction count.
func assertSettledMatchesExact(t *testing.T, tag string, res *Result, ref *selector.Selection) {
	t.Helper()
	if res.Sel.Status != ref.Status {
		t.Fatalf("%s: settled status %v, exact %v", tag, res.Sel.Status, ref.Status)
	}
	if ref.Status != ilp.Optimal {
		return
	}
	if res.Sel.Area != ref.Area {
		t.Fatalf("%s: settled area %v, exact %v", tag, res.Sel.Area, ref.Area)
	}
	if res.Sel.Gain != ref.Gain {
		t.Fatalf("%s: settled gain %d, exact %d", tag, res.Sel.Gain, ref.Gain)
	}
	if res.Sel.SInstructions != ref.SInstructions {
		t.Fatalf("%s: settled S %d, exact %d", tag, res.Sel.SInstructions, ref.SInstructions)
	}
	if res.Gap != 0 {
		t.Fatalf("%s: settled gap %g, want 0", tag, res.Gap)
	}
}

// TestPortfolioEquivalenceGolden races the paper's GSM and JPEG tables
// at gap 0 across the requirement band and every parallelism level; the
// settled answer must be the exact optimum, byte for byte.
func TestPortfolioEquivalenceGolden(t *testing.T) {
	tables := []struct {
		name  string
		build func() (*imp.DB, []apps.TableRow, error)
	}{
		{"gsm", apps.GSMEncoderTable},
		{"jpeg", apps.JPEGEncoderTable},
	}
	for _, tb := range tables {
		db, _, err := tb.build()
		if err != nil {
			t.Fatalf("%s: %v", tb.name, err)
		}
		an := selector.NewAnalysis(db)
		for _, frac := range []int64{10, 30, 50, 70, 90} {
			rg := an.MaxGain() * frac / 100
			for _, w := range portfolioLevels {
				p := selector.Problem{Required: rg, Budget: budget.Budget{Parallelism: w}}
				ref, err := an.Solve(context.Background(), p)
				if err != nil {
					t.Fatalf("%s rg=%d P=%d: exact: %v", tb.name, rg, w, err)
				}
				res, err := Run(context.Background(), an, p, nil, Config{Gap: 0})
				if err != nil {
					t.Fatalf("%s rg=%d P=%d: portfolio: %v", tb.name, rg, w, err)
				}
				tag := fmt.Sprintf("%s rg=%d P=%d", tb.name, rg, w)
				assertSettledMatchesExact(t, tag, res, ref)
				if res.First.Sel == nil {
					t.Fatalf("%s: no first answer recorded", tag)
				}
				if res.First.Elapsed > res.Settled {
					t.Errorf("%s: first at %v after settle %v", tag, res.First.Elapsed, res.Settled)
				}
			}
		}
	}
}

// fuzzDB builds one seeded synthetic selection instance: a handful of
// s-calls, shared IPs, mixed interface types, occasional parallel-code
// methods with conflicts.
func fuzzDB(t *testing.T, rng *rand.Rand) *imp.DB {
	t.Helper()
	nSC := 2 + rng.Intn(4)
	funcs := make([]string, nSC)
	for i := range funcs {
		funcs[i] = fmt.Sprintf("f%d", i)
	}
	nIP := 2 + rng.Intn(3)
	ips := make([]*ip.IP, nIP)
	for i := range ips {
		ips[i] = mkIP(fmt.Sprintf("IP%d", i), float64(1+rng.Intn(20)))
	}
	types := []iface.Type{iface.Type0, iface.Type1, iface.Type2, iface.Type3}
	var specs []imp.SynthIMP
	for sc := 1; sc <= nSC; sc++ {
		for j := 0; j < 1+rng.Intn(3); j++ {
			s := imp.SynthIMP{
				SC:        sc,
				IP:        ips[rng.Intn(nIP)],
				Type:      types[rng.Intn(len(types))],
				Gain:      int64(50 + rng.Intn(200)),
				IfaceArea: float64(rng.Intn(5)),
			}
			if rng.Intn(5) == 0 && nSC > 1 {
				s.UsesPC = true
				pc := 1 + rng.Intn(nSC)
				if pc != sc {
					s.PCOf = []int{pc}
				}
			}
			specs = append(specs, s)
		}
	}
	db, err := imp.NewSyntheticDB(funcs, specs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPortfolioFuzzCorpusEquivalence is the portfolio arm of the
// equivalence fuzz corpus: 20 seeded synthetic instances, three
// requirement points each, gap 0 at parallelism 1/2/4 — the settled
// answer must match the exact solve exactly (including infeasible
// instances).
func TestPortfolioFuzzCorpusEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	solved := 0
	for c := 0; c < 20; c++ {
		db := fuzzDB(t, rng)
		an := selector.NewAnalysis(db)
		for _, frac := range []int64{30, 60, 95} {
			rg := an.MaxGain() * frac / 100
			for _, w := range portfolioLevels {
				p := selector.Problem{Required: rg, Budget: budget.Budget{Parallelism: w}}
				ref, err := an.Solve(context.Background(), p)
				if err != nil {
					t.Fatalf("corpus %d rg=%d P=%d: exact: %v", c, rg, w, err)
				}
				res, err := Run(context.Background(), an, p, nil, Config{Gap: 0})
				if err != nil {
					t.Fatalf("corpus %d rg=%d P=%d: portfolio: %v", c, rg, w, err)
				}
				assertSettledMatchesExact(t, fmt.Sprintf("corpus %d rg=%d P=%d", c, rg, w), res, ref)
				if ref.Status == ilp.Optimal && w == 1 {
					solved++
				}
			}
		}
	}
	if solved < 10 {
		t.Fatalf("only %d corpus points solved Optimal; corpus too degenerate to be meaningful", solved)
	}
}

// TestPortfolioInfeasibleProof: a requirement beyond the reachable
// maximum settles as a proven Infeasible with gap 0, and the first
// answer is that proof.
func TestPortfolioInfeasibleProof(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	an := selector.NewAnalysis(db)
	res, err := Run(context.Background(), an,
		selector.Problem{Required: an.MaxGain() + 1}, nil, Config{Gap: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want Infeasible", res.Sel.Status)
	}
	if res.Gap != 0 || res.First.Sel.Status != ilp.Infeasible {
		t.Errorf("gap = %g, first = %v; want a settled infeasibility proof", res.Gap, res.First.Sel.Status)
	}
	if !res.Confirmed {
		t.Error("infeasibility proof not marked Confirmed")
	}
}

// TestPortfolioOnFirstOnce: the first-acceptable callback fires exactly
// once per race, with a selection consistent with the recorded First.
func TestPortfolioOnFirstOnce(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	an := selector.NewAnalysis(db)
	for i := 0; i < 5; i++ {
		var fired atomic.Int32
		var got Answer
		res, err := Run(context.Background(), an,
			selector.Problem{Required: an.MaxGain() / 2}, nil, Config{
				Gap: 0.25,
				OnFirst: func(a Answer) {
					fired.Add(1)
					got = a
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		if n := fired.Load(); n != 1 {
			t.Fatalf("run %d: OnFirst fired %d times", i, n)
		}
		if got.Sel == nil || got.Engine != res.First.Engine || got.Sel.Area != res.First.Sel.Area {
			t.Fatalf("run %d: callback answer %+v disagrees with recorded First %+v", i, got, res.First)
		}
		if res.First.Gap > 0.25 {
			t.Errorf("run %d: first answer gap %g exceeds threshold", i, res.First.Gap)
		}
	}
}

// TestPortfolioConfirmedOnProof: at a loose gap the race still settles
// on the exact proof, and when the first answer already had the optimal
// area the proof confirms it.
func TestPortfolioConfirmedOnProof(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	an := selector.NewAnalysis(db)
	rg := an.MaxGain() / 3
	res, err := Run(context.Background(), an, selector.Problem{Required: rg}, nil, Config{Gap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sel.Exact() {
		t.Fatalf("settled result not exact: %v (gap %g)", res.Sel.Status, res.Gap)
	}
	want := math.Abs(res.First.Sel.Area-res.Sel.Area) <= 1e-9
	if res.Confirmed != want {
		t.Errorf("Confirmed = %v, first area %v vs optimal %v", res.Confirmed, res.First.Sel.Area, res.Sel.Area)
	}
}

// TestReselectMatchesCold drives an edit chain — IP area, method gain,
// then a requirement change — through Reselect with warm seeding, and
// checks every settled answer against a cold exact solve of the same
// edited problem: zero correctness drift, and the parent analysis is
// never mutated.
func TestReselectMatchesCold(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	base := selector.NewAnalysis(db)
	rg := base.MaxGain() / 2
	p := selector.Problem{Required: rg}

	res, err := Run(context.Background(), base, p, nil, Config{Gap: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sel.Exact() {
		t.Fatalf("cold portfolio not exact: %v", res.Sel.Status)
	}
	if len(res.Sel.Chosen) == 0 {
		t.Fatal("cold solve chose nothing")
	}

	wantMax := base.MaxGain()
	newReq := rg * 3 / 4
	edits := []selector.Delta{
		{IPArea: map[string]float64{res.Sel.Chosen[0].IP.ID: res.Sel.Chosen[0].IP.Area * 4}},
		{IMPGain: map[string]int64{db.IMPs[0].ID: db.IMPs[0].GainPerExec * 2}},
		{Required: &newReq},
	}
	an, prev := base, res.Sel
	for i, d := range edits {
		r, na, err := Reselect(context.Background(), an, prev, d, p, Config{Gap: 0})
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if !r.Seeded {
			t.Errorf("edit %d: race not marked Seeded", i)
		}
		// Cold reference: same delta applied, no seed, plain exact solve.
		refAn, err := an.Apply(d)
		if err != nil {
			t.Fatalf("edit %d: apply: %v", i, err)
		}
		refP, err := refAn.ApplyProblem(d, p)
		if err != nil {
			t.Fatalf("edit %d: apply problem: %v", i, err)
		}
		ref, err := refAn.Solve(context.Background(), refP)
		if err != nil {
			t.Fatalf("edit %d: cold exact: %v", i, err)
		}
		assertSettledMatchesExact(t, fmt.Sprintf("edit %d", i), r, ref)
		an, prev = na, r.Sel
		p, err = na.ApplyProblem(d, p)
		if err != nil {
			t.Fatal(err)
		}
		p.DB = na.DB()
	}
	if base.MaxGain() != wantMax {
		t.Errorf("parent analysis mutated: MaxGain %d, want %d", base.MaxGain(), wantMax)
	}
}

// TestReselectRejectsBadDelta: unknown IDs and negative values error
// without racing anything.
func TestReselectRejectsBadDelta(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	an := selector.NewAnalysis(db)
	neg := int64(-1)
	bad := []selector.Delta{
		{IPArea: map[string]float64{"nope": 1}},
		{IPArea: map[string]float64{db.IMPs[0].IP.ID: -2}},
		{IMPGain: map[string]int64{"nope": 1}},
		{Required: &neg},
		{PathRequired: map[int]int64{99: 1}},
	}
	for i, d := range bad {
		if _, _, err := Reselect(context.Background(), an, nil, d, selector.Problem{Required: 1}, Config{}); err == nil {
			t.Errorf("delta %d: expected an error", i)
		}
	}
}
